package objset

import (
	"math/rand"
	"testing"
)

func TestInternerBasic(t *testing.T) {
	in := NewInterner()
	a := New(1, 2, 3)
	h1, created := in.Intern(a)
	if !created {
		t.Fatal("first intern not created")
	}
	// Same contents, different representation and storage: same handle.
	h2, created := in.Intern(Compact(New(3, 2, 1)))
	if created || h2 != h1 {
		t.Fatalf("re-intern: handle %d created=%v, want %d false", h2, created, h1)
	}
	if got, ok := in.Lookup(New(1, 2, 3)); !ok || got != h1 {
		t.Fatalf("Lookup = %d %v", got, ok)
	}
	if !in.Of(h1).Equal(a) {
		t.Fatalf("Of(%d) = %v", h1, in.Of(h1))
	}
	if _, ok := in.Lookup(New(1, 2)); ok {
		t.Fatal("lookup of never-interned set succeeded")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d", in.Len())
	}
}

func TestInternerReleaseRecyclesHandles(t *testing.T) {
	in := NewInterner()
	h, _ := in.Intern(New(1, 2))
	in.Release(h)
	if in.Len() != 0 {
		t.Fatalf("Len after release = %d", in.Len())
	}
	if _, ok := in.Lookup(New(1, 2)); ok {
		t.Fatal("released set still found")
	}
	h2, created := in.Intern(New(7, 8))
	if !created || h2 != h {
		t.Fatalf("handle not recycled: got %d, want %d", h2, h)
	}
	if !in.Of(h2).Equal(New(7, 8)) {
		t.Fatalf("recycled handle holds %v", in.Of(h2))
	}
}

// TestInternerChurn drives random intern/release cycles against a map
// model, across table growth and heavy tombstone turnover.
func TestInternerChurn(t *testing.T) {
	in := NewInterner()
	r := rand.New(rand.NewSource(3))
	model := map[string]Handle{}
	for step := 0; step < 20000; step++ {
		s := randSet(r)
		if s.IsEmpty() {
			continue
		}
		k := s.Key()
		if h, ok := model[k]; ok && r.Intn(2) == 0 {
			in.Release(h)
			delete(model, k)
			continue
		}
		h, created := in.Intern(s)
		if _, ok := model[k]; ok == created {
			t.Fatalf("step %d: created=%v but model has=%v for %v", step, created, ok, s)
		}
		if prev, ok := model[k]; ok && prev != h {
			t.Fatalf("step %d: handle changed %d → %d for %v", step, prev, h, s)
		}
		model[k] = h
		if !in.Of(h).Equal(s) {
			t.Fatalf("step %d: Of(%d) = %v, want %v", step, h, in.Of(h), s)
		}
	}
	if in.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", in.Len(), len(model))
	}
	for k, h := range model {
		got, ok := in.Lookup(fromKeyString(k))
		if !ok || got != h {
			t.Fatalf("final lookup of %q: %d %v, want %d", k, got, ok, h)
		}
	}
}

func fromKeyString(key string) Set {
	ids := make([]ID, 0, len(key)/4)
	for i := 0; i+3 < len(key); i += 4 {
		ids = append(ids, ID(key[i])|ID(key[i+1])<<8|ID(key[i+2])<<16|ID(key[i+3])<<24)
	}
	return New(ids...)
}

func TestInternEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("interning the empty set did not panic")
		}
	}()
	NewInterner().Intern(Empty)
}

// TestInternerSteadyStateAllocFree pins the zero-allocation contract of
// the hot operations: lookups and intern hits never allocate, and a
// release/re-intern cycle of an identical set reuses the freed entry's
// probe path (the Clone on insert is the only allocation).
func TestInternerSteadyStateAllocFree(t *testing.T) {
	in := NewInterner()
	sets := make([]Set, 64)
	for i := range sets {
		sets[i] = New(ID(i), ID(i+100), ID(i+200))
		in.Intern(sets[i])
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, s := range sets {
			if _, ok := in.Lookup(s); !ok {
				t.Fatal("lost set")
			}
		}
	}); n != 0 {
		t.Errorf("Lookup allocates %.1f per run of 64", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, s := range sets {
			if _, created := in.Intern(s); created {
				t.Fatal("hit became create")
			}
		}
	}); n != 0 {
		t.Errorf("Intern hit allocates %.1f per run of 64", n)
	}
}
