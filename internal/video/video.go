// Package video synthesizes object streams with the statistical shape of
// real surveillance footage. It stands in for the paper's video corpora
// (VisualRoad renderings and the Detrac/MOT16 clips): the query layers
// consume only the extracted relation VR(fid, id, class), and the
// performance behaviour the paper studies is driven by per-dataset
// statistics — objects per frame, occlusions per object, frames per
// object (Table 6) — all of which the generator reproduces.
//
// A Scene is ground truth: objects with presence intervals, classes and
// occlusion gaps. Scenes are rendered to a vr.Trace directly (perfect
// tracking) or through package track, which simulates detector/tracker
// imperfections. The occlusion parameter po of §6.2 (object-id reuse) is
// implemented by ReuseIDs.
package video

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tvq/internal/objset"
	"tvq/internal/vr"
)

// Profile describes the statistical shape of a dataset, mirroring the
// columns of Table 6.
type Profile struct {
	Name string
	// Frames is the total number of frames to generate.
	Frames int
	// Objects is the number of unique ground-truth objects.
	Objects int
	// FramesPerObj is the mean number of frames each object is visible
	// (F/Obj in Table 6).
	FramesPerObj float64
	// OccPerObj is the mean number of occlusion gaps per object
	// (Occ/Obj in Table 6).
	OccPerObj float64
	// ClassMix gives relative weights over class names; objects draw
	// their class from this distribution. Empty means a single class
	// "object".
	ClassMix map[string]float64
	// MovingCamera marks profiles captured by a moving camera (M1, M2):
	// object entries cluster in bursts as the camera pans, producing a
	// higher rate of new object sets per frame.
	MovingCamera bool
}

// Validate checks the profile is generable.
func (p Profile) Validate() error {
	if p.Frames <= 0 {
		return fmt.Errorf("video: profile %q: frames must be positive", p.Name)
	}
	if p.Objects <= 0 {
		return fmt.Errorf("video: profile %q: objects must be positive", p.Name)
	}
	if p.FramesPerObj <= 0 || p.FramesPerObj > float64(p.Frames) {
		return fmt.Errorf("video: profile %q: frames per object %.2f out of range", p.Name, p.FramesPerObj)
	}
	if p.OccPerObj < 0 {
		return fmt.Errorf("video: profile %q: occlusions per object must be non-negative", p.Name)
	}
	for name, w := range p.ClassMix {
		if w < 0 {
			return fmt.Errorf("video: profile %q: negative weight for class %q", p.Name, name)
		}
	}
	return nil
}

// Object is one ground-truth tracked object: its identifier, class name
// and the frame intervals during which it is visible (occlusion gaps
// separate the segments).
type Object struct {
	ID       objset.ID
	Class    string
	Segments []Segment
}

// Segment is a half-open presence interval [From, To).
type Segment struct {
	From, To vr.FrameID
}

// Frames returns the number of frames the object is visible.
func (o Object) Frames() int {
	n := 0
	for _, s := range o.Segments {
		n += int(s.To - s.From)
	}
	return n
}

// Scene is a generated ground truth: objects over a frame range.
type Scene struct {
	Profile Profile
	Objects []Object
}

// Generate synthesizes a scene for the profile using the given seed.
// Generation is deterministic in (profile, seed).
func Generate(p Profile, seed int64) (*Scene, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	classes := classSampler(p.ClassMix, r)

	sc := &Scene{Profile: p}
	for i := 0; i < p.Objects; i++ {
		visible := sampleAround(r, p.FramesPerObj)
		if visible < 1 {
			visible = 1
		}
		if visible > p.Frames {
			visible = p.Frames
		}
		gaps := poisson(r, p.OccPerObj)
		segments := buildSegments(r, visible, gaps)

		span := 0
		for _, s := range segments {
			span += int(s.To - s.From)
		}
		gapTotal := totalGap(segments)
		lifetime := span + gapTotal

		var arrival int
		if p.MovingCamera {
			// Moving cameras introduce objects in bursts: cluster
			// arrivals around pan events spread across the clip.
			nbursts := 1 + p.Frames/90
			burst := r.Intn(nbursts)
			center := (burst*p.Frames)/nbursts + r.Intn(p.Frames/nbursts+1)
			arrival = center - lifetime/2
		} else {
			arrival = r.Intn(maxInt(1, p.Frames-lifetime+1))
		}
		if arrival < 0 {
			arrival = 0
		}

		obj := Object{ID: objset.ID(i + 1), Class: classes()}
		for _, s := range segments {
			from := vr.FrameID(arrival) + s.From
			to := vr.FrameID(arrival) + s.To
			if from >= vr.FrameID(p.Frames) {
				break
			}
			if to > vr.FrameID(p.Frames) {
				to = vr.FrameID(p.Frames)
			}
			obj.Segments = append(obj.Segments, Segment{From: from, To: to})
		}
		if len(obj.Segments) == 0 {
			obj.Segments = []Segment{{From: vr.FrameID(p.Frames - 1), To: vr.FrameID(p.Frames)}}
		}
		sc.Objects = append(sc.Objects, obj)
	}
	return sc, nil
}

// buildSegments splits `visible` frames of presence into gaps+1 segments
// separated by occlusion gaps of geometric length (mean ≈ 8 frames,
// roughly a quarter second at 30 fps).
func buildSegments(r *rand.Rand, visible, gaps int) []Segment {
	if gaps >= visible {
		gaps = visible - 1
	}
	if gaps < 0 {
		gaps = 0
	}
	// Split the visible frames into gaps+1 positive parts.
	parts := splitPositive(r, visible, gaps+1)
	var segments []Segment
	var cursor vr.FrameID
	for i, part := range parts {
		if i > 0 {
			gap := 1 + geometric(r, 8)
			cursor += vr.FrameID(gap)
		}
		segments = append(segments, Segment{From: cursor, To: cursor + vr.FrameID(part)})
		cursor += vr.FrameID(part)
	}
	return segments
}

func totalGap(segments []Segment) int {
	g := 0
	for i := 1; i < len(segments); i++ {
		g += int(segments[i].From - segments[i-1].To)
	}
	return g
}

// splitPositive splits total into n positive integers summing to total,
// uniformly-ish.
func splitPositive(r *rand.Rand, total, n int) []int {
	if n <= 1 {
		return []int{total}
	}
	if n > total {
		n = total
	}
	cuts := make([]int, 0, n-1)
	used := map[int]bool{}
	for len(cuts) < n-1 {
		c := 1 + r.Intn(total-1)
		if !used[c] {
			used[c] = true
			cuts = append(cuts, c)
		}
	}
	sort.Ints(cuts)
	parts := make([]int, 0, n)
	prev := 0
	for _, c := range cuts {
		parts = append(parts, c-prev)
		prev = c
	}
	parts = append(parts, total-prev)
	return parts
}

// sampleAround draws a positive integer with the given mean: exponential
// with the mean, clamped — giving realistic spread in object lifetimes.
func sampleAround(r *rand.Rand, mean float64) int {
	v := r.ExpFloat64() * mean
	if v < 1 {
		v = 1
	}
	return int(math.Round(v))
}

func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; lambda is small (< 10) in all profiles.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func geometric(r *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	n := 0
	for r.Float64() >= p {
		n++
		if n > mean*20 {
			break
		}
	}
	return n
}

func classSampler(mix map[string]float64, r *rand.Rand) func() string {
	if len(mix) == 0 {
		return func() string { return "object" }
	}
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	cum := make([]float64, len(names))
	for i, name := range names {
		total += mix[name]
		cum[i] = total
	}
	return func() string {
		x := r.Float64() * total
		for i, c := range cum {
			if x < c {
				return names[i]
			}
		}
		return names[len(names)-1]
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render converts ground truth to the structured relation with perfect
// detection and tracking: every object appears in exactly the frames of
// its segments. reg resolves class names.
func (sc *Scene) Render(reg *vr.Registry) *vr.Trace {
	classes := make(map[objset.ID]vr.Class, len(sc.Objects))
	perFrame := make([][]objset.ID, sc.Profile.Frames)
	for _, o := range sc.Objects {
		classes[o.ID] = reg.Class(o.Class)
		for _, s := range o.Segments {
			for f := s.From; f < s.To && int(f) < len(perFrame); f++ {
				if f >= 0 {
					perFrame[f] = append(perFrame[f], o.ID)
				}
			}
		}
	}
	frames := make([]objset.Set, len(perFrame))
	for i, ids := range perFrame {
		frames[i] = objset.New(ids...)
	}
	return vr.NewTraceFromFrames(frames, classes)
}

// ReuseIDs implements the occlusion parameter po of §6.2: after an object
// disappears for good, its identifier may be handed to a later-arriving
// object of the same class, at most po times per identifier. The result
// is a trace with fewer unique identifiers and correspondingly more
// occlusion gaps per identifier — the paper's device for stressing
// occlusion handling. po = 0 returns the trace unchanged.
func ReuseIDs(t *vr.Trace, po int, seed int64) *vr.Trace {
	if po <= 0 {
		return t
	}
	type life struct {
		id          objset.ID
		class       vr.Class
		first, last vr.FrameID
	}
	classes := t.Classes()
	lives := make(map[objset.ID]*life)
	for _, f := range t.Frames() {
		for _, id := range f.Objects.IDs() {
			l := lives[id]
			if l == nil {
				l = &life{id: id, class: classes[id], first: f.FID, last: f.FID}
				lives[id] = l
			}
			l.last = f.FID
		}
	}
	ordered := make([]*life, 0, len(lives))
	for _, l := range lives {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].first != ordered[j].first {
			return ordered[i].first < ordered[j].first
		}
		return ordered[i].id < ordered[j].id
	})

	r := rand.New(rand.NewSource(seed))
	// retired[class] holds identifiers whose object has left, with their
	// departure frame; uses counts how often each identifier has been
	// handed to a new object so far ("each object id will be reused at
	// most po times", §6.2 — the cap is cumulative across chains).
	type retiree struct {
		id   objset.ID
		left vr.FrameID
	}
	retired := make(map[vr.Class][]retiree)
	uses := make(map[objset.ID]int)
	remap := make(map[objset.ID]objset.ID, len(ordered))
	var retireQueue []*life // lives ordered by last frame, to retire lazily
	retireQueue = append(retireQueue, ordered...)
	sort.Slice(retireQueue, func(i, j int) bool { return retireQueue[i].last < retireQueue[j].last })
	qi := 0

	// Only objects that departed recently are candidates for id reuse: a
	// tracker confusing two objects does so across a short gap, and only
	// a reappearance within a query window exercises occlusion handling.
	// Reusing arbitrarily old ids would merely rename objects.
	const maxGap = 300 // frames, one default window

	for _, l := range ordered {
		// Retire everything that departed strictly before this arrival.
		for qi < len(retireQueue) && retireQueue[qi].last < l.first {
			dead := retireQueue[qi]
			qi++
			finalID := remap[dead.id]
			if finalID == 0 {
				finalID = dead.id
			}
			if uses[finalID] < po {
				retired[dead.class] = append(retired[dead.class], retiree{id: finalID, left: dead.last})
			}
		}
		// Evict retirees whose departure is too old to matter.
		pool := retired[l.class]
		live := pool[:0]
		for _, rt := range pool {
			if rt.left+maxGap >= l.first {
				live = append(live, rt)
			}
		}
		pool = live
		// The chance that an arriving object takes over a retired id
		// grows with po, so the number of reuse events — and with it the
		// occlusion count per identifier — rises monotonically, matching
		// how the paper's experiments stress the parameter.
		reuseProb := 0.3 + 0.1*float64(po)
		if len(pool) > 0 && r.Float64() < reuseProb {
			pick := r.Intn(len(pool))
			id := pool[pick].id
			remap[l.id] = id
			uses[id]++
			if uses[id] >= po {
				pool[pick] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
		}
		retired[l.class] = pool
	}

	newClasses := make(map[objset.ID]vr.Class)
	frames := make([]objset.Set, t.Len())
	for i, f := range t.Frames() {
		ids := make([]objset.ID, 0, f.Objects.Len())
		for _, id := range f.Objects.IDs() {
			nid := id
			if m, ok := remap[id]; ok {
				nid = m
			}
			ids = append(ids, nid)
			newClasses[nid] = classes[id]
		}
		frames[i] = objset.New(ids...)
	}
	return vr.NewTraceFromFrames(frames, newClasses)
}
