package video

// Profiles for the six datasets of the paper's evaluation (Table 6). The
// numeric columns are taken directly from the table; class mixes reflect
// the source footage: VisualRoad renders street traffic (V1: rain, light
// traffic; V2: postpluvial, heavy traffic), Detrac is highway traffic
// captured by static cameras (D1, D2), and MOT16 is pedestrian footage
// from moving cameras (M1, M2).

// V1 matches VisualRoad "rain with light traffic".
func V1() Profile {
	return Profile{
		Name: "V1", Frames: 1800, Objects: 173,
		FramesPerObj: 76.71, OccPerObj: 3.6,
		ClassMix: map[string]float64{"car": 0.62, "truck": 0.18, "bus": 0.06, "person": 0.14},
	}
}

// V2 matches VisualRoad "postpluvial with heavy traffic".
func V2() Profile {
	return Profile{
		Name: "V2", Frames: 1700, Objects: 127,
		FramesPerObj: 79.84, OccPerObj: 6.33,
		ClassMix: map[string]float64{"car": 0.66, "truck": 0.16, "bus": 0.08, "person": 0.10},
	}
}

// D1 matches Detrac MVI_40171 (static camera).
func D1() Profile {
	return Profile{
		Name: "D1", Frames: 1150, Objects: 179,
		FramesPerObj: 48.61, OccPerObj: 5.20,
		ClassMix: map[string]float64{"car": 0.75, "truck": 0.12, "bus": 0.09, "person": 0.04},
	}
}

// D2 matches Detrac MVI_40751 (static camera, dense traffic).
func D2() Profile {
	return Profile{
		Name: "D2", Frames: 1145, Objects: 158,
		FramesPerObj: 65.18, OccPerObj: 7.23,
		ClassMix: map[string]float64{"car": 0.78, "truck": 0.10, "bus": 0.08, "person": 0.04},
	}
}

// M1 matches MOT16-06 (moving camera, pedestrians).
func M1() Profile {
	return Profile{
		Name: "M1", Frames: 1194, Objects: 342,
		FramesPerObj: 23.67, OccPerObj: 3.37,
		MovingCamera: true,
		ClassMix:     map[string]float64{"person": 0.88, "car": 0.08, "truck": 0.02, "bus": 0.02},
	}
}

// M2 matches MOT16-13 (moving camera, dense street scene).
func M2() Profile {
	return Profile{
		Name: "M2", Frames: 750, Objects: 186,
		FramesPerObj: 46.96, OccPerObj: 3.48,
		MovingCamera: true,
		ClassMix:     map[string]float64{"person": 0.80, "car": 0.14, "truck": 0.03, "bus": 0.03},
	}
}

// StandardProfiles returns the six Table 6 dataset profiles in the
// paper's order.
func StandardProfiles() []Profile {
	return []Profile{V1(), V2(), D1(), D2(), M1(), M2()}
}

// ProfileByName looks up one of the standard profiles; ok is false for
// unknown names.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range StandardProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
