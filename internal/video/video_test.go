package video

import (
	"math"
	"math/rand"
	"testing"

	"tvq/internal/vr"
)

func TestGenerateDeterministic(t *testing.T) {
	p := V1()
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != len(b.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(a.Objects), len(b.Objects))
	}
	for i := range a.Objects {
		if a.Objects[i].Class != b.Objects[i].Class ||
			len(a.Objects[i].Segments) != len(b.Objects[i].Segments) {
			t.Fatalf("object %d differs across runs", i)
		}
	}
	c, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Objects {
		if len(a.Objects[i].Segments) != len(c.Objects[i].Segments) {
			same = false
			break
		}
	}
	if same {
		// With a different seed the segment structure should differ for
		// at least one of 173 objects.
		diff := false
		for i := range a.Objects {
			if a.Objects[i].Segments[0] != c.Objects[i].Segments[0] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical scenes")
		}
	}
}

func TestGenerateValidatesProfile(t *testing.T) {
	bad := []Profile{
		{Name: "x", Frames: 0, Objects: 1, FramesPerObj: 1},
		{Name: "x", Frames: 10, Objects: 0, FramesPerObj: 1},
		{Name: "x", Frames: 10, Objects: 1, FramesPerObj: 0},
		{Name: "x", Frames: 10, Objects: 1, FramesPerObj: 100},
		{Name: "x", Frames: 10, Objects: 1, FramesPerObj: 5, OccPerObj: -1},
		{Name: "x", Frames: 10, Objects: 1, FramesPerObj: 5, ClassMix: map[string]float64{"car": -1}},
	}
	for i, p := range bad {
		if _, err := Generate(p, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSegmentsWithinBounds(t *testing.T) {
	for _, p := range StandardProfiles() {
		sc, err := Generate(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range sc.Objects {
			prevTo := vr.FrameID(-1)
			for _, s := range o.Segments {
				if s.From < 0 || s.To > vr.FrameID(p.Frames) || s.From >= s.To {
					t.Fatalf("%s object %d: bad segment %+v", p.Name, o.ID, s)
				}
				if s.From <= prevTo {
					t.Fatalf("%s object %d: overlapping segments", p.Name, o.ID)
				}
				prevTo = s.To
			}
			if o.Frames() == 0 {
				t.Fatalf("%s object %d never visible", p.Name, o.ID)
			}
		}
	}
}

// TestRenderedStatsMatchProfiles checks that rendered traces land near the
// Table 6 statistics the profiles encode. Sampling noise across a few
// hundred objects allows a generous tolerance; the point is the *shape*:
// dataset orderings of density and churn must be preserved.
func TestRenderedStatsMatchProfiles(t *testing.T) {
	reg := vr.StandardRegistry()
	stats := map[string]vr.Stats{}
	for _, p := range StandardProfiles() {
		sc, err := Generate(p, 11)
		if err != nil {
			t.Fatal(err)
		}
		tr := sc.Render(reg)
		st := vr.ComputeStats(tr)
		stats[p.Name] = st
		if st.Frames != p.Frames {
			t.Errorf("%s: frames = %d, want %d", p.Name, st.Frames, p.Frames)
		}
		if st.Objects != p.Objects {
			t.Errorf("%s: objects = %d, want %d", p.Name, st.Objects, p.Objects)
		}
		if rel := math.Abs(st.FramesPerObj-p.FramesPerObj) / p.FramesPerObj; rel > 0.35 {
			t.Errorf("%s: frames/obj = %.2f, profile %.2f (rel err %.2f)",
				p.Name, st.FramesPerObj, p.FramesPerObj, rel)
		}
	}
	// Orderings that drive the paper's trade-offs: M2 is the densest
	// dataset, V2 among the sparsest; M1 has the shortest object
	// lifetimes.
	if !(stats["M2"].ObjPerFrame > stats["V2"].ObjPerFrame) {
		t.Errorf("density ordering lost: M2 %.2f ≤ V2 %.2f",
			stats["M2"].ObjPerFrame, stats["V2"].ObjPerFrame)
	}
	for _, name := range []string{"V1", "V2", "D1", "D2", "M2"} {
		if stats["M1"].FramesPerObj > stats[name].FramesPerObj {
			t.Errorf("M1 frames/obj %.2f should be the smallest (vs %s %.2f)",
				stats["M1"].FramesPerObj, name, stats[name].FramesPerObj)
		}
	}
}

func TestClassMixRespected(t *testing.T) {
	p := M1() // 88% person
	sc, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, o := range sc.Objects {
		counts[o.Class]++
	}
	if frac := float64(counts["person"]) / float64(len(sc.Objects)); frac < 0.75 {
		t.Errorf("person fraction = %.2f, want ≈ 0.88", frac)
	}
	if counts["car"] == 0 {
		t.Error("no cars generated despite 8% weight")
	}
}

func TestEmptyClassMixDefaults(t *testing.T) {
	p := Profile{Name: "plain", Frames: 50, Objects: 5, FramesPerObj: 10}
	sc, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Objects {
		if o.Class != "object" {
			t.Fatalf("class = %q", o.Class)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"V1", "V2", "D1", "D2", "M1", "M2"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%s) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
}

func TestReuseIDsReducesUniqueObjects(t *testing.T) {
	reg := vr.StandardRegistry()
	sc, err := Generate(D1(), 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := sc.Render(reg)
	base := vr.ComputeStats(tr)

	prevObjects := base.Objects
	for po := 1; po <= 3; po++ {
		got := ReuseIDs(tr, po, 99)
		st := vr.ComputeStats(got)
		if st.Objects >= prevObjects {
			t.Errorf("po=%d: unique objects %d, want < %d", po, st.Objects, prevObjects)
		}
		if st.OccPerObj <= base.OccPerObj {
			t.Errorf("po=%d: occ/obj %.2f, want > baseline %.2f", po, st.OccPerObj, base.OccPerObj)
		}
		// Total appearances are preserved: ids are renamed, not dropped.
		if gotApp, wantApp := st.ObjPerFrame*float64(st.Frames), base.ObjPerFrame*float64(base.Frames); math.Abs(gotApp-wantApp) > 1e-6 {
			// ID reuse can merge two objects present in the same frame
			// into one set member; allow a small deficit but no growth.
			if gotApp > wantApp {
				t.Errorf("po=%d: appearances grew: %f > %f", po, gotApp, wantApp)
			}
		}
		prevObjects = st.Objects
	}
}

func TestReuseIDsZeroIsIdentity(t *testing.T) {
	reg := vr.StandardRegistry()
	sc, _ := Generate(V1(), 5)
	tr := sc.Render(reg)
	if got := ReuseIDs(tr, 0, 1); got != tr {
		t.Error("po=0 should return the trace unchanged")
	}
}

func TestReuseIDsKeepsClassesConsistent(t *testing.T) {
	reg := vr.StandardRegistry()
	sc, _ := Generate(M2(), 8)
	tr := ReuseIDs(sc.Render(reg), 3, 4)
	// NewTrace enforces class consistency; rebuild from tuples to check.
	if _, err := vr.NewTrace(tr.Tuples()); err != nil {
		t.Fatalf("id reuse broke class consistency: %v", err)
	}
}

func TestSplitPositive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		total := 1 + r.Intn(50)
		n := 1 + r.Intn(8)
		parts := splitPositive(r, total, n)
		sum := 0
		for _, p := range parts {
			if p <= 0 {
				t.Fatalf("non-positive part in %v (total=%d n=%d)", parts, total, n)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("parts %v sum to %d, want %d", parts, sum, total)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const lambda = 3.5
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(r, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.15 {
		t.Errorf("poisson mean = %.3f, want ≈ %.1f", mean, lambda)
	}
	if poisson(r, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
}
