package bench

import (
	"fmt"
	"io"
	"time"

	"tvq/internal/cnf"
	"tvq/internal/engine"
	"tvq/internal/vr"
)

// MultiFeed materializes the named dataset profile several times with
// distinct seeds — the synthetic stand-in for a bank of cameras all
// watching scenes of the same statistical shape. Every feed uses the
// standard registry, so engines built with default options match.
func (c Config) MultiFeed(name string, feeds int) ([]*vr.Trace, error) {
	if feeds < 1 {
		return nil, fmt.Errorf("bench: need at least one feed, got %d", feeds)
	}
	traces := make([]*vr.Trace, feeds)
	for i := range traces {
		cc := c
		cc.Seed = c.Seed + int64(i)
		ds, err := cc.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		traces[i] = ds.Trace
	}
	return traces, nil
}

// InterleaveFeeds multiplexes several feeds round-robin into one
// ingestion stream, the arrival order a fair multi-camera multiplexer
// would produce. Each frame keeps its per-feed frame id.
func InterleaveFeeds(traces []*vr.Trace) []engine.FeedFrame {
	total := 0
	for _, tr := range traces {
		total += tr.Len()
	}
	out := make([]engine.FeedFrame, 0, total)
	for fi := 0; len(out) < total; fi++ {
		for feed, tr := range traces {
			if fi < tr.Len() {
				out = append(out, engine.FeedFrame{Feed: engine.FeedID(feed), Frame: tr.Frame(fi)})
			}
		}
	}
	return out
}

// runSerial is the single-engine baseline: one engine per feed, every
// frame processed by the one goroutine that calls it. It does the same
// total work as a pool, minus the parallelism.
func runSerial(queries []cnf.Query, opts engine.Options, frames []engine.FeedFrame) (int, error) {
	engines := make(map[engine.FeedID]*engine.Engine)
	matches := 0
	for _, ff := range frames {
		eng, ok := engines[ff.Feed]
		if !ok {
			var err error
			eng, err = engine.New(queries, opts)
			if err != nil {
				return 0, err
			}
			engines[ff.Feed] = eng
		}
		matches += len(eng.ProcessFrame(ff.Frame))
	}
	return matches, nil
}

// runPool drives the same frames through a Pool in ProcessBatch chunks.
func runPool(queries []cnf.Query, popts engine.PoolOptions, frames []engine.FeedFrame) (int, error) {
	p, err := engine.NewPool(queries, popts)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	batch := popts.Batch
	if batch <= 0 {
		batch = engine.DefaultBatch
	}
	matches := 0
	for lo := 0; lo < len(frames); lo += batch {
		hi := lo + batch
		if hi > len(frames) {
			hi = len(frames)
		}
		for _, r := range p.ProcessBatch(frames[lo:hi]) {
			matches += len(r.Matches)
		}
	}
	return matches, nil
}

// ParallelRow is one measured configuration of the scaling experiment.
type ParallelRow struct {
	Label     string  // "serial" or "pool/N"
	Workers   int     // 0 for the serial baseline
	Seconds   float64 // wall time over the whole interleaved stream
	FramesSec float64 // total frames / Seconds
	Speedup   float64 // serial Seconds / this row's Seconds
	Matches   int     // total matches, for cross-checking row agreement
}

// ParallelReport is the multi-feed scaling experiment: the serial
// baseline plus the pool at increasing worker counts, all over the same
// interleaved multi-camera stream.
type ParallelReport struct {
	Dataset string
	Feeds   int
	Queries int
	Frames  int // total frames across all feeds
	Rows    []ParallelRow
}

// ParallelScaling measures multi-feed throughput on the named dataset:
// `feeds` synthetic cameras, `queries` mixed CNF queries each, serial
// versus pool at worker counts 1, 2, 4, ... up to maxWorkers. Every row
// must agree on the total match count; a disagreement is reported as an
// error because it would mean sharding changed results.
func (c Config) ParallelScaling(name string, feeds, queries, maxWorkers int) (ParallelReport, error) {
	traces, err := c.MultiFeed(name, feeds)
	if err != nil {
		return ParallelReport{}, err
	}
	qs := MixedWorkload(queries, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
	frames := InterleaveFeeds(traces)
	rep := ParallelReport{Dataset: name, Feeds: feeds, Queries: queries, Frames: len(frames)}

	start := time.Now()
	serialMatches, err := runSerial(qs, engine.Options{}, frames)
	if err != nil {
		return ParallelReport{}, err
	}
	serial := time.Since(start).Seconds()
	rep.Rows = append(rep.Rows, ParallelRow{
		Label: "serial", Seconds: serial,
		FramesSec: float64(len(frames)) / serial, Speedup: 1, Matches: serialMatches,
	})

	for workers := 1; workers <= maxWorkers; workers *= 2 {
		start := time.Now()
		matches, err := runPool(qs, engine.PoolOptions{Workers: workers, Mode: engine.ShardByFeed}, frames)
		if err != nil {
			return ParallelReport{}, err
		}
		secs := time.Since(start).Seconds()
		if matches != serialMatches {
			return ParallelReport{}, fmt.Errorf(
				"bench: pool with %d workers found %d matches, serial found %d", workers, matches, serialMatches)
		}
		rep.Rows = append(rep.Rows, ParallelRow{
			Label: fmt.Sprintf("pool/%d", workers), Workers: workers, Seconds: secs,
			FramesSec: float64(len(frames)) / secs, Speedup: serial / secs, Matches: matches,
		})
	}
	return rep, nil
}

// Render writes the scaling report as an aligned text table.
func (r ParallelReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== Parallel scaling: %s x %d feeds, %d queries, %d frames ==\n",
		r.Dataset, r.Feeds, r.Queries, r.Frames); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s%12s%14s%10s%10s\n", "config", "seconds", "frames/sec", "speedup", "matches")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s%12.4f%14.0f%10.2f%10d\n",
			row.Label, row.Seconds, row.FramesSec, row.Speedup, row.Matches)
	}
	return nil
}
