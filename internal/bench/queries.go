package bench

import (
	"math/rand"

	"tvq/internal/cnf"
)

// workloadLabels are the classes the paper's experiments query (§6.1).
var workloadLabels = []string{"person", "car", "truck", "bus"}

// MixedWorkload generates n random CNF queries mixing ≥, ≤ and =
// conditions — the workload of Figure 8 and Figure 10. Deterministic in
// seed.
func MixedWorkload(n, window, duration int, seed int64) []cnf.Query {
	r := rand.New(rand.NewSource(seed))
	out := make([]cnf.Query, 0, n)
	for i := 0; i < n; i++ {
		q := cnf.Query{ID: i + 1, Window: window, Duration: duration}
		nclauses := 1 + r.Intn(3)
		for c := 0; c < nclauses; c++ {
			nconds := 1 + r.Intn(2)
			var d cnf.Disjunction
			for j := 0; j < nconds; j++ {
				d = append(d, cnf.Condition{
					Label: workloadLabels[r.Intn(len(workloadLabels))],
					Op:    cnf.Op(r.Intn(3)),
					N:     r.Intn(5),
				})
			}
			q.Clauses = append(q.Clauses, d)
		}
		out = append(out, q)
	}
	return out
}

// ScalingWorkload generates n subscriptions drawn round-robin from a
// fixed catalog of `shapes` distinct query bodies — the fleet model of
// a serving deployment, where thousands of standing subscriptions reuse
// popular query shapes. Thresholds are high so matches stay rare and
// the measurement isolates per-frame evaluation cost from emission
// volume. Queries get distinct ids and share window/duration; the
// catalog (and so the shared plan's node population) is independent of
// n. Deterministic in seed.
func ScalingWorkload(n, shapes, window, duration int, seed int64) []cnf.Query {
	r := rand.New(rand.NewSource(seed))
	catalog := make([][]cnf.Disjunction, shapes)
	for s := range catalog {
		nclauses := 1 + r.Intn(3)
		body := make([]cnf.Disjunction, 0, nclauses)
		for c := 0; c < nclauses; c++ {
			nconds := 1 + r.Intn(2)
			var d cnf.Disjunction
			for j := 0; j < nconds; j++ {
				d = append(d, cnf.Condition{
					Label: workloadLabels[r.Intn(len(workloadLabels))],
					Op:    cnf.GE,
					N:     6 + r.Intn(6),
				})
			}
			body = append(body, d)
		}
		catalog[s] = body
	}
	out := make([]cnf.Query, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cnf.Query{ID: i + 1, Window: window, Duration: duration, Clauses: catalog[i%shapes]})
	}
	return out
}

// ScalingShapes is the catalog size of the scaling workload: enough
// distinct bodies that the plan is non-trivial, few enough that 10k
// subscriptions heavily share them.
const ScalingShapes = 64

// ScalingQueryCounts are the subscription counts the query-scaling
// experiment sweeps (Benchmark/MeasureScaling).
var ScalingQueryCounts = []int{10, 100, 1000, 10000}

// GEWorkload generates n ≥-only queries whose smallest threshold is
// exactly nmin — the Figure 9 workload ("100 queries containing ≥
// conditions only", n_min = min threshold over all conditions).
// Deterministic in seed.
func GEWorkload(n, nmin, window, duration int, seed int64) []cnf.Query {
	r := rand.New(rand.NewSource(seed))
	out := make([]cnf.Query, 0, n)
	for i := 0; i < n; i++ {
		q := cnf.Query{ID: i + 1, Window: window, Duration: duration}
		nclauses := 1 + r.Intn(3)
		for c := 0; c < nclauses; c++ {
			nconds := 1 + r.Intn(2)
			var d cnf.Disjunction
			for j := 0; j < nconds; j++ {
				d = append(d, cnf.Condition{
					Label: workloadLabels[r.Intn(len(workloadLabels))],
					Op:    cnf.GE,
					N:     nmin + r.Intn(3),
				})
			}
			q.Clauses = append(q.Clauses, d)
		}
		out = append(out, q)
	}
	// Pin the global minimum: force one condition of the first query to
	// exactly nmin so min over all conditions equals the parameter.
	out[0].Clauses[0][0].N = nmin
	return out
}
