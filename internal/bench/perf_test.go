package bench

import (
	"encoding/json"
	"os"
	"testing"
)

func TestMeasurePerf(t *testing.T) {
	entries, err := quick().MeasurePerf("D1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(MCOSMethods) {
		t.Fatalf("got %d entries, want %d", len(entries), len(MCOSMethods))
	}
	for _, e := range entries {
		if e.Dataset != "D1" || e.Frames <= 0 || e.Seconds <= 0 || e.FramesPerSec <= 0 {
			t.Errorf("implausible entry: %+v", e)
		}
	}
	if _, err := quick().MeasurePerf("nope", 5); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestWritePerfJSON(t *testing.T) {
	entries, err := quick().MeasurePerf("M1", 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WritePerfJSON(dir, "M1", entries)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []PerfEntry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back) != len(entries) || back[0].Method != entries[0].Method {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}
