package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"tvq/internal/server"
	"tvq/internal/vr"
)

// IngestBatchFrames is the batch size of the ingest measurement — large
// enough that per-request HTTP overhead amortizes away and the codec's
// per-frame decode cost dominates the wall clock.
const IngestBatchFrames = 2048

// ingestReps is how many times MeasureIngest re-ingests the trace per
// codec; the fastest rep is recorded.
const ingestReps = 5

// EncodeBatches pre-encodes a trace into self-contained wire batches of
// up to batch frames each, exactly as tvqclient ships them. It returns
// the batches and the total wire bytes.
func EncodeBatches(t *vr.Trace, codec vr.Codec, reg *vr.Registry, batch int) ([][]byte, int64, error) {
	frames := t.Frames()
	var out [][]byte
	var total int64
	for start := 0; start < len(frames); start += batch {
		end := min(start+batch, len(frames))
		var buf bytes.Buffer
		fw := codec.NewFrameWriter(&buf, reg)
		for _, f := range frames[start:end] {
			if err := fw.WriteFrame(f); err != nil {
				return nil, 0, err
			}
		}
		if err := fw.Flush(); err != nil {
			return nil, 0, err
		}
		out = append(out, buf.Bytes())
		total += int64(buf.Len())
	}
	return out, total, nil
}

// MeasureIngest measures daemon-side ingest throughput on one dataset,
// once per codec: the trace is pre-encoded into IngestBatchFrames-sized
// batches outside the timed region, then POSTed to an in-process tvqd
// serving stack over a loopback HTTP connection. The session carries
// one cheap query (a rare four-of-a-kind, so registration is realistic
// but evaluation is not the bottleneck) — the timed work is HTTP
// dispatch plus wire decode plus the engine's retain path, which is
// where the binary codec's ownership transfer pays off. Allocation
// deltas span client and server since both live in this process; the
// comparison between codecs holds because the client side is identical
// encoded-bytes shipping in both runs.
func (c Config) MeasureIngest(name string) ([]PerfEntry, error) {
	ds, err := c.LoadDataset(name)
	if err != nil {
		return nil, err
	}
	window, duration := c.scale(DefaultWindow), c.scale(DefaultDuration)

	var entries []PerfEntry
	for _, codec := range vr.Codecs() {
		batches, wireBytes, err := EncodeBatches(ds.Trace, codec, ds.Reg, IngestBatchFrames)
		if err != nil {
			return nil, err
		}

		srv := server.New(server.Config{
			Registry:       cloneRegistry(ds.Reg),
			MaxBatchFrames: IngestBatchFrames,
		})
		ts := httptest.NewServer(srv.Handler())

		// One rep ingests the whole trace into a fresh session (the feed
		// cursor only moves forward, so frames cannot replay into an old
		// one). Scaled-down traces make a single rep only a handful of
		// HTTP round trips, so run several and keep the fastest — the
		// rep least disturbed by GC and connection setup.
		rep := func(session string) (secs float64, allocs, heap uint64, err error) {
			create := fmt.Sprintf(
				`{"name":%q,"queries":[{"id":1,"query":"bus >= 4","window":%d,"duration":%d}]}`,
				session, window, duration)
			if err := post(ts.URL+"/v1/sessions", "application/json", []byte(create)); err != nil {
				return 0, 0, 0, err
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for _, batch := range batches {
				if err := post(ts.URL+"/v1/feeds/0/frames?session="+session, codec.ContentType(), batch); err != nil {
					return 0, 0, 0, err
				}
			}
			secs = time.Since(start).Seconds()
			runtime.ReadMemStats(&after)
			return secs, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
		}

		var secs float64
		var allocs, heap uint64
		for i := 0; i < ingestReps; i++ {
			s, a, h, err := rep(fmt.Sprintf("ingest-%s-%d", codec.Name(), i))
			if err != nil {
				ts.Close()
				srv.Shutdown()
				return nil, err
			}
			if i == 0 || s < secs {
				secs, allocs, heap = s, a, h
			}
		}
		ts.Close()
		srv.Shutdown()

		frames := ds.Trace.Len()
		entries = append(entries, PerfEntry{
			Dataset: name, Method: "INGEST", Window: window, Duration: duration,
			Queries: 1, Frames: frames, Seconds: secs,
			FramesPerSec:   float64(frames) / secs,
			Allocs:         allocs,
			AllocsPerFr:    float64(allocs) / float64(frames),
			Bytes:          heap,
			BytesPerFr:     float64(heap) / float64(frames),
			Codec:          codec.Name(),
			WireBytes:      uint64(wireBytes),
			WireBytesPerFr: float64(wireBytes) / float64(frames),
		})
	}
	return entries, nil
}

// post sends one request and drains the response, failing on non-2xx.
func post(url, contentType string, body []byte) error {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}
