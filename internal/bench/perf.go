package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tvq/internal/engine"
)

// PerfEntry is one machine-readable benchmark record, written by
// cmd/tvqbench so the performance trajectory can be tracked across PRs
// without parsing text tables.
type PerfEntry struct {
	Dataset      string  `json:"dataset"`
	Method       string  `json:"method"`
	Window       int     `json:"window"`
	Duration     int     `json:"duration"`
	Queries      int     `json:"queries"`
	Frames       int     `json:"frames"`
	Seconds      float64 `json:"seconds"`
	FramesPerSec float64 `json:"frames_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocsPerFr  float64 `json:"allocs_per_frame"`
	Bytes        uint64  `json:"bytes"`
	BytesPerFr   float64 `json:"bytes_per_frame"`

	// Wire-path fields, set only on MeasureIngest entries (method
	// "INGEST"): which frame codec carried the batch and what it cost
	// in bytes on the wire.
	Codec          string  `json:"codec,omitempty"`
	WireBytes      uint64  `json:"wire_bytes,omitempty"`
	WireBytesPerFr float64 `json:"wire_bytes_per_frame,omitempty"`
}

// MeasurePerf runs the standard multi-query workload on one dataset once
// per MCOS method and records wall time and allocation counts. Alloc
// counts come from runtime.MemStats mallocs deltas, so they are close
// but not cycle-exact when GC runs concurrently.
func (c Config) MeasurePerf(name string, queries int) ([]PerfEntry, error) {
	ds, err := c.LoadDataset(name)
	if err != nil {
		return nil, err
	}
	window, duration := c.scale(DefaultWindow), c.scale(DefaultDuration)
	qs := MixedWorkload(queries, window, duration, c.Seed)

	var entries []PerfEntry
	for _, m := range MCOSMethods {
		eng, err := engine.New(qs, engine.Options{
			Method:   engine.Method(strings.ToLower(m)),
			Registry: cloneRegistry(ds.Reg),
		})
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, f := range ds.Trace.Frames() {
			eng.ProcessFrame(f)
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		frames := ds.Trace.Len()
		allocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		entries = append(entries, PerfEntry{
			Dataset: name, Method: m, Window: window, Duration: duration,
			Queries: queries, Frames: frames, Seconds: secs,
			FramesPerSec: float64(frames) / secs,
			Allocs:       allocs,
			AllocsPerFr:  float64(allocs) / float64(frames),
			Bytes:        bytes,
			BytesPerFr:   float64(bytes) / float64(frames),
		})
	}
	return entries, nil
}

// MeasureScaling runs the query-scaling workload on one dataset: the
// subscription count sweeps ScalingQueryCounts over a fixed
// ScalingShapes-body catalog, MFS, one record per count (method
// "SCALING"). Under the shared query plan, frames_per_sec should stay
// near-flat across the sweep — per-frame cost tracks the catalog, not
// the subscription count.
func (c Config) MeasureScaling(name string) ([]PerfEntry, error) {
	ds, err := c.LoadDataset(name)
	if err != nil {
		return nil, err
	}
	window, duration := c.scale(DefaultWindow), c.scale(DefaultDuration)

	var entries []PerfEntry
	for _, n := range ScalingQueryCounts {
		qs := ScalingWorkload(n, ScalingShapes, window, duration, c.Seed)
		eng, err := engine.New(qs, engine.Options{
			Method:   engine.MethodMFS,
			Registry: cloneRegistry(ds.Reg),
		})
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, f := range ds.Trace.Frames() {
			eng.ProcessFrame(f)
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		frames := ds.Trace.Len()
		allocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		entries = append(entries, PerfEntry{
			Dataset: name, Method: "SCALING", Window: window, Duration: duration,
			Queries: n, Frames: frames, Seconds: secs,
			FramesPerSec: float64(frames) / secs,
			Allocs:       allocs,
			AllocsPerFr:  float64(allocs) / float64(frames),
			Bytes:        bytes,
			BytesPerFr:   float64(bytes) / float64(frames),
		})
	}
	return entries, nil
}

// PerfFileName is the per-dataset output name, BENCH_<dataset>.json.
func PerfFileName(dataset string) string { return fmt.Sprintf("BENCH_%s.json", dataset) }

// WritePerfJSON writes one dataset's entries to dir/BENCH_<dataset>.json
// and returns the path.
func WritePerfJSON(dir, dataset string, entries []PerfEntry) (string, error) {
	path := filepath.Join(dir, PerfFileName(dataset))
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
