//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build;
// throughput assertions skip under it, since its serialization erases
// parallel speedup.
const raceEnabled = true
