// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) on the synthetic dataset profiles
// of package video. Each experiment returns structured rows/series and
// can render itself as text, so the cmd/tvqbench tool and the Go
// benchmarks in the repository root drive the same code.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/engine"
	"tvq/internal/track"
	"tvq/internal/video"
	"tvq/internal/vr"
)

// Config scales the harness. The paper's parameters are the defaults;
// Scale divides frame counts for quick runs (benchmarks use Scale > 1 to
// keep -bench wall time reasonable; cmd/tvqbench defaults to full scale).
type Config struct {
	// Seed drives scene generation and noise; experiments are
	// deterministic in it.
	Seed int64
	// Scale divides every dataset's frame count, window and duration
	// (minimum 1). Scale 1 reproduces the paper's parameters exactly.
	Scale int
	// Noise configures the simulated detector/tracker; zero means
	// perfect tracking, which the MCOS experiments use so that dataset
	// statistics stay at their Table 6 values.
	Noise track.Noise
}

func (c Config) scale(v int) int {
	if c.Scale <= 1 {
		return v
	}
	s := v / c.Scale
	if s < 1 {
		s = 1
	}
	return s
}

// DefaultWindow and DefaultDuration are the paper's defaults (§6.2): with
// 30 fps footage, objects appearing at least 8 of the last 10 seconds.
const (
	DefaultWindow   = 300
	DefaultDuration = 240
)

// Dataset materializes one profile through the (simulated) detection and
// tracking layer.
type Dataset struct {
	Profile video.Profile
	Trace   *vr.Trace
	Reg     *vr.Registry
}

// LoadDataset generates the named Table 6 dataset at the harness scale.
func (c Config) LoadDataset(name string) (*Dataset, error) {
	p, ok := video.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	p.Frames = c.scale(p.Frames)
	if c.Scale > 1 {
		// Preserve density: scale object population with frame count.
		p.Objects = maxInt(2, p.Objects/c.Scale)
	}
	sc, err := video.Generate(p, c.Seed)
	if err != nil {
		return nil, err
	}
	reg := vr.StandardRegistry()
	tr, err := track.Detect(sc, reg, c.Noise)
	if err != nil {
		return nil, err
	}
	return &Dataset{Profile: p, Trace: tr, Reg: reg}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DatasetNames lists the Table 6 datasets in the paper's order.
func DatasetNames() []string { return []string{"V1", "V2", "D1", "D2", "M1", "M2"} }

// Point is one measurement: x is the swept parameter value, Seconds the
// measured wall time.
type Point struct {
	X       float64
	Seconds float64
}

// Series is one curve of a figure (one method).
type Series struct {
	Label  string
	Points []Point
}

// Subfigure is one panel, e.g. Figure 4a.
type Subfigure struct {
	Name   string // e.g. "V1"
	XLabel string
	Series []Series
}

// Figure is a full experiment result.
type Figure struct {
	ID         string
	Title      string
	Subfigures []Subfigure
}

// Render writes the figure as aligned text tables, one per subfigure.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, sf := range f.Subfigures {
		fmt.Fprintf(w, "\n-- %s (x = %s, y = seconds) --\n", sf.Name, sf.XLabel)
		fmt.Fprintf(w, "%-10s", sf.XLabel)
		for _, s := range sf.Series {
			fmt.Fprintf(w, "%12s", s.Label)
		}
		fmt.Fprintln(w)
		if len(sf.Series) == 0 {
			continue
		}
		for i := range sf.Series[0].Points {
			fmt.Fprintf(w, "%-10.0f", sf.Series[0].Points[i].X)
			for _, s := range sf.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, "%12.4f", s.Points[i].Seconds)
				} else {
					fmt.Fprintf(w, "%12s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// newGenerator builds the named MCOS generator.
func newGenerator(method string, cfg core.Config) core.Generator {
	switch method {
	case "NAIVE":
		return core.NewNaive(cfg)
	case "MFS":
		return core.NewMFS(cfg)
	case "SSG":
		return core.NewSSG(cfg)
	}
	panic("bench: unknown method " + method)
}

// MCOSMethods are the §6.2 subjects.
var MCOSMethods = []string{"NAIVE", "MFS", "SSG"}

// timeMCOS measures MCOS generation only: feed frames through the
// generator and discard results (§6.2: "experiments that measure only the
// MCOS generation time").
func timeMCOS(gen core.Generator, tr *vr.Trace, frames int) float64 {
	if frames > tr.Len() {
		frames = tr.Len()
	}
	start := time.Now()
	for i := 0; i < frames; i++ {
		gen.Process(tr.Frame(i))
	}
	return time.Since(start).Seconds()
}

// Table6Row is one dataset's statistics row.
type Table6Row struct {
	Dataset string
	Stats   vr.Stats
}

// Table6 regenerates the dataset statistics table from rendered traces.
func (c Config) Table6() ([]Table6Row, error) {
	var rows []Table6Row
	for _, name := range DatasetNames() {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{Dataset: name, Stats: vr.ComputeStats(ds.Trace)})
	}
	return rows, nil
}

// RenderTable6 writes the statistics rows in the paper's layout.
func RenderTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "== Table 6: Dataset Statistics ==\n")
	fmt.Fprintf(w, "%-10s", "Dataset")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s", r.Dataset)
	}
	fmt.Fprintln(w)
	line := func(label string, get func(vr.Stats) string) {
		fmt.Fprintf(w, "%-10s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%10s", get(r.Stats))
		}
		fmt.Fprintln(w)
	}
	line("Frames", func(s vr.Stats) string { return fmt.Sprint(s.Frames) })
	line("Objects", func(s vr.Stats) string { return fmt.Sprint(s.Objects) })
	line("Obj/F", func(s vr.Stats) string { return fmt.Sprintf("%.2f", s.ObjPerFrame) })
	line("Occ/Obj", func(s vr.Stats) string { return fmt.Sprintf("%.2f", s.OccPerObj) })
	line("F/Obj", func(s vr.Stats) string { return fmt.Sprintf("%.2f", s.FramesPerObj) })
}

// Figure4 varies the number of frames processed (w=300, d=240) and times
// the three MCOS generators on each dataset.
func (c Config) Figure4(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 4", Title: "MCOS generation time vs number of frames"}
	for _, name := range datasets {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return Figure{}, err
		}
		steps := frameSteps(ds.Trace.Len())
		sf := Subfigure{Name: name, XLabel: "frames"}
		for _, m := range MCOSMethods {
			s := Series{Label: m}
			for _, n := range steps {
				gen := newGenerator(m, core.Config{
					Window:   c.scale(DefaultWindow),
					Duration: c.scale(DefaultDuration),
				})
				s.Points = append(s.Points, Point{X: float64(n), Seconds: timeMCOS(gen, ds.Trace, n)})
			}
			sf.Series = append(sf.Series, s)
		}
		fig.Subfigures = append(fig.Subfigures, sf)
	}
	return fig, nil
}

// frameSteps picks 4-5 prefix lengths like the paper's x axes.
func frameSteps(total int) []int {
	if total < 8 {
		return []int{total}
	}
	steps := []int{total * 2 / 5, total * 3 / 5, total * 4 / 5, total}
	sort.Ints(steps)
	return steps
}

// Figure5 varies the duration parameter d with w=300.
func (c Config) Figure5(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 5", Title: "MCOS generation time vs duration d"}
	durations := []int{180, 210, 240, 270}
	return c.sweep(fig, datasets, "duration", durations, func(d int) core.Config {
		return core.Config{Window: c.scale(DefaultWindow), Duration: c.scale(d)}
	})
}

// Figure6 varies the window size w with d=240.
func (c Config) Figure6(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 6", Title: "MCOS generation time vs window size w"}
	windows := []int{300, 400, 500, 600}
	return c.sweep(fig, datasets, "window", windows, func(w int) core.Config {
		return core.Config{Window: c.scale(w), Duration: c.scale(DefaultDuration)}
	})
}

func (c Config) sweep(fig Figure, datasets []string, xlabel string, xs []int, mk func(int) core.Config) (Figure, error) {
	for _, name := range datasets {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return Figure{}, err
		}
		sf := Subfigure{Name: name, XLabel: xlabel}
		for _, m := range MCOSMethods {
			s := Series{Label: m}
			for _, x := range xs {
				gen := newGenerator(m, mk(x))
				s.Points = append(s.Points, Point{X: float64(x), Seconds: timeMCOS(gen, ds.Trace, ds.Trace.Len())})
			}
			sf.Series = append(sf.Series, s)
		}
		fig.Subfigures = append(fig.Subfigures, sf)
	}
	return fig, nil
}

// Figure7 varies the occlusion parameter po (id reuse, §6.2).
func (c Config) Figure7(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 7", Title: "MCOS generation time vs occlusions po"}
	pos := []int{0, 1, 2, 3}
	for _, name := range datasets {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return Figure{}, err
		}
		sf := Subfigure{Name: name, XLabel: "po"}
		traces := make([]*vr.Trace, len(pos))
		for i, po := range pos {
			traces[i] = video.ReuseIDs(ds.Trace, po, c.Seed+int64(po))
		}
		for _, m := range MCOSMethods {
			s := Series{Label: m}
			for i, po := range pos {
				gen := newGenerator(m, core.Config{
					Window:   c.scale(DefaultWindow),
					Duration: c.scale(DefaultDuration),
				})
				s.Points = append(s.Points, Point{X: float64(po), Seconds: timeMCOS(gen, traces[i], traces[i].Len())})
			}
			sf.Series = append(sf.Series, s)
		}
		fig.Subfigures = append(fig.Subfigures, sf)
	}
	return fig, nil
}

// Figure8 varies the number of queries (10..50) and measures MCOS
// generation plus query evaluation, on V1 and M2 as in the paper.
func (c Config) Figure8(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 8", Title: "total time vs number of queries"}
	if datasets == nil {
		datasets = []string{"V1", "M2"}
	}
	counts := []int{10, 20, 30, 40, 50}
	for _, name := range datasets {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return Figure{}, err
		}
		sf := Subfigure{Name: name, XLabel: "queries"}
		for _, m := range MCOSMethods {
			s := Series{Label: m}
			for _, n := range counts {
				queries := MixedWorkload(n, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
				secs, err := timeEngine(ds, queries, engine.Method(strings.ToLower(m)), false)
				if err != nil {
					return Figure{}, err
				}
				s.Points = append(s.Points, Point{X: float64(n), Seconds: secs})
			}
			sf.Series = append(sf.Series, s)
		}
		fig.Subfigures = append(fig.Subfigures, sf)
	}
	return fig, nil
}

func timeEngine(ds *Dataset, queries []cnf.Query, method engine.Method, prune bool) (float64, error) {
	eng, err := engine.New(queries, engine.Options{
		Method:   method,
		Prune:    prune,
		Registry: cloneRegistry(ds.Reg),
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for _, f := range ds.Trace.Frames() {
		eng.ProcessFrame(f)
	}
	return time.Since(start).Seconds(), nil
}

func cloneRegistry(reg *vr.Registry) *vr.Registry {
	return vr.NewRegistry(reg.Names()...)
}

// Figure9 evaluates the §5.3 pruning strategy: 100 ≥-only queries whose
// minimum threshold n_min varies from 1 to 9, with the five methods
// NAIVE_E, MFS_E, SSG_E (no pruning) and MFS_O, SSG_O (pruning).
func (c Config) Figure9(datasets []string) (Figure, error) {
	fig := Figure{ID: "Figure 9", Title: "total time vs n_min for >=-only queries"}
	if datasets == nil {
		datasets = []string{"D1", "D2", "M1", "M2"}
	}
	type method struct {
		label  string
		method engine.Method
		prune  bool
	}
	methods := []method{
		{"NAIVE_E", engine.MethodNaive, false},
		{"MFS_E", engine.MethodMFS, false},
		{"SSG_E", engine.MethodSSG, false},
		{"MFS_O", engine.MethodMFS, true},
		{"SSG_O", engine.MethodSSG, true},
	}
	nmins := []int{1, 3, 5, 7, 9}
	for _, name := range datasets {
		ds, err := c.LoadDataset(name)
		if err != nil {
			return Figure{}, err
		}
		sf := Subfigure{Name: name, XLabel: "nmin"}
		series := make([]Series, len(methods))
		for i, m := range methods {
			series[i] = Series{Label: m.label}
		}
		for _, nmin := range nmins {
			queries := GEWorkload(100, nmin, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
			for i, m := range methods {
				secs, err := timeEngine(ds, queries, m.method, m.prune)
				if err != nil {
					return Figure{}, err
				}
				series[i].Points = append(series[i].Points, Point{X: float64(nmin), Seconds: secs})
			}
		}
		sf.Series = series
		fig.Subfigures = append(fig.Subfigures, sf)
	}
	return fig, nil
}

// Figure10 measures end-to-end time per query for 50 queries on each
// dataset, including the (simulated) detection and tracking stage.
func (c Config) Figure10() (Figure, error) {
	fig := Figure{ID: "Figure 10", Title: "end-to-end average time per query (50 queries)"}
	sf := Subfigure{Name: "all datasets", XLabel: "dataset#"}
	series := make([]Series, len(MCOSMethods))
	for i, m := range MCOSMethods {
		series[i] = Series{Label: m}
	}
	for di, name := range DatasetNames() {
		p, _ := video.ProfileByName(name)
		p.Frames = c.scale(p.Frames)
		if c.Scale > 1 {
			p.Objects = maxInt(2, p.Objects/c.Scale)
		}
		for i, m := range MCOSMethods {
			start := time.Now()
			// Detection/tracking stage (simulated substitute for Faster
			// R-CNN + Deep SORT).
			sc, err := video.Generate(p, c.Seed)
			if err != nil {
				return Figure{}, err
			}
			reg := vr.StandardRegistry()
			tr, err := track.Detect(sc, reg, c.Noise)
			if err != nil {
				return Figure{}, err
			}
			ds := &Dataset{Profile: p, Trace: tr, Reg: reg}
			queries := MixedWorkload(50, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
			if _, err := timeEngine(ds, queries, engine.Method(strings.ToLower(m)), false); err != nil {
				return Figure{}, err
			}
			perQuery := time.Since(start).Seconds() / 50
			series[i].Points = append(series[i].Points, Point{X: float64(di), Seconds: perQuery})
		}
	}
	sf.Series = series
	fig.Subfigures = []Subfigure{sf}
	return fig, nil
}

// Speedup returns series[a]/series[b] at the last point of a subfigure,
// for assertions on experiment shape.
func Speedup(sf Subfigure, a, b string) float64 {
	var pa, pb float64
	for _, s := range sf.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1].Seconds
		switch s.Label {
		case a:
			pa = last
		case b:
			pb = last
		}
	}
	if pb == 0 {
		return 0
	}
	return pa / pb
}
