package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"tvq/internal/engine"
)

func TestMultiFeed(t *testing.T) {
	traces, err := quick().MultiFeed("M2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("MultiFeed returned %d traces", len(traces))
	}
	// Distinct seeds should yield distinct feeds of the same length.
	if traces[0].Len() != traces[1].Len() {
		t.Errorf("feed lengths differ: %d vs %d", traces[0].Len(), traces[1].Len())
	}
	same := true
	for i := 0; i < traces[0].Len(); i++ {
		if !traces[0].Frame(i).Objects.Equal(traces[1].Frame(i).Objects) {
			same = false
			break
		}
	}
	if same {
		t.Error("feeds 0 and 1 are identical; seeds not applied")
	}
	if _, err := quick().MultiFeed("M2", 0); err == nil {
		t.Error("zero feeds accepted")
	}
}

func TestInterleaveFeeds(t *testing.T) {
	traces, err := quick().MultiFeed("D1", 2)
	if err != nil {
		t.Fatal(err)
	}
	frames := InterleaveFeeds(traces)
	want := traces[0].Len() + traces[1].Len()
	if len(frames) != want {
		t.Fatalf("interleaved %d frames, want %d", len(frames), want)
	}
	// Per-feed frame ids must stay consecutive from 0 in stream order.
	next := map[engine.FeedID]int64{}
	for _, ff := range frames {
		if ff.Frame.FID != next[ff.Feed] {
			t.Fatalf("feed %d: frame %d out of order (want %d)", ff.Feed, ff.Frame.FID, next[ff.Feed])
		}
		next[ff.Feed]++
	}
}

// TestParallelScalingAgrees runs the scaling experiment at tiny scale;
// ParallelScaling itself fails if any pool row's match count deviates
// from the serial baseline, so this doubles as the correctness gate.
func TestParallelScalingAgrees(t *testing.T) {
	rep, err := quick().ParallelScaling("M2", 2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // serial, pool/1, pool/2
		t.Fatalf("got %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows[1:] {
		if row.Matches != rep.Rows[0].Matches {
			t.Fatalf("%s: %d matches, serial %d", row.Label, row.Matches, rep.Rows[0].Matches)
		}
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pool/2") {
		t.Errorf("render missing pool/2 row:\n%s", buf.String())
	}
}

// TestPoolBeatsSerial is the acceptance check for the parallel executor:
// on the multi-feed multi-query workload, four workers must deliver at
// least twice the serial baseline's frames/sec. Parallel speedup needs
// parallel hardware and an uninstrumented build, so the test only
// measures on >= 4-CPU machines without the race detector. CI runs it
// in a dedicated non-race, continue-on-error step (wall-clock gates on
// shared runners flake); the authoritative run is
// `go test ./internal/bench -run TestPoolBeatsSerial` on real hardware.
func TestPoolBeatsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector serializes execution; speedup is not measurable")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 CPUs for a 4-worker speedup, have %d", runtime.GOMAXPROCS(0))
	}
	cfg := Config{Seed: 1, Scale: 4}
	rep, err := cfg.ParallelScaling("M2", 4, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	var pool4 *ParallelRow
	for i := range rep.Rows {
		if rep.Rows[i].Workers == 4 {
			pool4 = &rep.Rows[i]
		}
	}
	if pool4 == nil {
		t.Fatal("no pool/4 row")
	}
	if pool4.Speedup < 2 {
		t.Errorf("pool/4 speedup %.2fx, want >= 2x (serial %.3fs, pool %.3fs)",
			pool4.Speedup, rep.Rows[0].Seconds, pool4.Seconds)
	}
}

// BenchmarkPoolMultiFeed measures multi-camera throughput at increasing
// worker counts on the M2-style multi-query workload; frames/sec is
// reported as a custom metric. On parallel hardware pool/N approaches
// N-times the serial rate.
func BenchmarkPoolMultiFeed(b *testing.B) {
	cfg := Config{Seed: 1, Scale: 6}
	const feeds, nqueries = 4, 30
	traces, err := cfg.MultiFeed("M2", feeds)
	if err != nil {
		b.Fatal(err)
	}
	qs := MixedWorkload(nqueries, cfg.scale(DefaultWindow), cfg.scale(DefaultDuration), cfg.Seed)
	frames := InterleaveFeeds(traces)

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runSerial(qs, engine.Options{}, frames); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pool/%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				popts := engine.PoolOptions{Workers: workers, Mode: engine.ShardByFeed}
				if _, err := runPool(qs, popts, frames); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}
