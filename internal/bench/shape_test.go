package bench

import (
	"testing"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/engine"
	"tvq/internal/video"
	"tvq/internal/vr"
)

// Shape regression tests: the paper's qualitative claims, asserted on
// deterministic work metrics (states visited, intersections computed,
// states maintained) rather than wall time, so they are stable across
// machines. Each test names the paper finding it guards.

type metered interface {
	core.Generator
	Metrics() core.Metrics
}

func runMetered(t *testing.T, gen metered, tr *vr.Trace) core.Metrics {
	t.Helper()
	for _, f := range tr.Frames() {
		gen.Process(f)
	}
	return gen.Metrics()
}

func scaledCfg(c Config) core.Config {
	return core.Config{Window: c.scale(DefaultWindow), Duration: c.scale(DefaultDuration)}
}

// Claim (§6.2, Figures 4-6): on moving-camera datasets with short object
// lifetimes (M1), SSG's subtree pruning visits far fewer states per frame
// than the flat scans of NAIVE/MFS.
func TestShapeSSGVisitsFewerStatesOnM1(t *testing.T) {
	// Scale 3 rather than the usual test scale: the containment structure
	// SSG exploits needs a realistically sized window to emerge.
	c := Config{Seed: 1, Scale: 3}
	ds, err := c.LoadDataset("M1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaledCfg(c)
	ssg := runMetered(t, core.NewSSG(cfg), ds.Trace)
	mfs := runMetered(t, core.NewMFS(cfg), ds.Trace)
	if ssg.Intersections >= mfs.Intersections {
		t.Errorf("SSG computed %d intersections, MFS %d; SSG should compute fewer on M1",
			ssg.Intersections, mfs.Intersections)
	}
	if float64(ssg.Intersections) > 0.8*float64(mfs.Intersections) {
		t.Errorf("SSG saved only %.0f%% of intersections on M1; the paper's gap is larger",
			100*(1-float64(ssg.Intersections)/float64(mfs.Intersections)))
	}
}

// Claim (§4.2, Figure 7): MFS prunes invalid states that NAIVE retains,
// and the gap widens as occlusions are injected (po).
func TestShapeMFSPrunesMoreUnderOcclusion(t *testing.T) {
	c := quick()
	ds, err := c.LoadDataset("D1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaledCfg(c)
	tr := video.ReuseIDs(ds.Trace, 3, 7)

	peak := func(gen core.Generator) int {
		max := 0
		for _, f := range tr.Frames() {
			gen.Process(f)
			if n := gen.StateCount(); n > max {
				max = n
			}
		}
		return max
	}
	naive := peak(core.NewNaive(cfg))
	mfs := peak(core.NewMFS(cfg))
	if mfs > naive {
		t.Errorf("MFS peaked at %d states, NAIVE at %d; MFS must not retain more", mfs, naive)
	}
}

// Claim (Figure 8): total time is flat in the number of queries — query
// evaluation cost is negligible next to state maintenance. Asserted on
// states visited, which must be identical regardless of the query count.
func TestShapeQueryCountDoesNotAffectStateMaintenance(t *testing.T) {
	c := quick()
	ds, err := c.LoadDataset("M1")
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{}
	for _, n := range []int{10, 50} {
		qs := MixedWorkload(n, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
		eng, err := engine.New(qs, engine.Options{
			Method:         engine.MethodMFS,
			Registry:       cloneRegistry(ds.Reg),
			KeepAllClasses: true, // identical inputs regardless of workload classes
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range ds.Trace.Frames() {
			eng.ProcessFrame(f)
		}
		counts = append(counts, eng.StateCount())
	}
	if counts[0] != counts[1] {
		t.Errorf("state maintenance depended on query count: %v", counts)
	}
}

// Claim (§5.3, Figure 9): with demanding ≥-only workloads, result-driven
// pruning collapses the state population by an order of magnitude, and
// the effect strengthens with n_min.
func TestShapePruningCollapsesStatesWithNmin(t *testing.T) {
	c := quick()
	ds, err := c.LoadDataset("M2")
	if err != nil {
		t.Fatal(err)
	}
	peakStates := func(nmin int, prune bool) int {
		qs := GEWorkload(100, nmin, c.scale(DefaultWindow), c.scale(DefaultDuration), c.Seed)
		eng, err := engine.New(qs, engine.Options{
			Method:   engine.MethodSSG,
			Prune:    prune,
			Registry: cloneRegistry(ds.Reg),
		})
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, f := range ds.Trace.Frames() {
			eng.ProcessFrame(f)
			if n := eng.StateCount(); n > max {
				max = n
			}
		}
		return max
	}
	base := peakStates(9, false)
	pruned9 := peakStates(9, true)
	pruned3 := peakStates(3, true)
	if pruned9*5 > base {
		t.Errorf("pruning at nmin=9 kept %d of %d states; expected >5x collapse", pruned9, base)
	}
	if pruned9 > pruned3 {
		t.Errorf("pruning weakened as nmin grew: nmin=9 kept %d, nmin=3 kept %d", pruned9, pruned3)
	}
}

// Claim (Figure 7 / §6.2): injected occlusions (po) increase the work all
// methods perform; the first injection step is the most violent.
func TestShapeOcclusionInjectionIncreasesWork(t *testing.T) {
	c := quick()
	ds, err := c.LoadDataset("M2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaledCfg(c)
	base := runMetered(t, core.NewMFS(cfg), ds.Trace)
	injected := runMetered(t, core.NewMFS(cfg), video.ReuseIDs(ds.Trace, 1, 7))
	if injected.Intersections <= base.Intersections {
		t.Errorf("po=1 did not increase intersections: %d vs %d",
			injected.Intersections, base.Intersections)
	}
}

// Claim (§3): the class-filter push-down shrinks state maintenance when
// queries reference a subset of classes.
func TestShapeClassFilterShrinksWork(t *testing.T) {
	c := quick()
	ds, err := c.LoadDataset("M2") // person-heavy with some vehicles
	if err != nil {
		t.Fatal(err)
	}
	run := func(keepAll bool) int {
		q := cnfQuery(t, 1, "bus >= 1", c.scale(DefaultWindow), c.scale(DefaultDuration))
		eng, err := engine.New(q, engine.Options{
			Method:         engine.MethodMFS,
			KeepAllClasses: keepAll,
			Registry:       cloneRegistry(ds.Reg),
		})
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, f := range ds.Trace.Frames() {
			eng.ProcessFrame(f)
			if n := eng.StateCount(); n > max {
				max = n
			}
		}
		return max
	}
	filtered := run(false)
	unfiltered := run(true)
	if filtered*2 > unfiltered {
		t.Errorf("class filter kept %d of %d states; expected a large reduction on a bus-only query",
			filtered, unfiltered)
	}
}

func cnfQuery(t *testing.T, id int, text string, w, d int) []cnf.Query {
	t.Helper()
	q, err := cnf.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	q.ID, q.Window, q.Duration = id, w, d
	return []cnf.Query{q}
}
