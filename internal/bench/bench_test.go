package bench

import (
	"bytes"
	"strings"
	"testing"

	"tvq/internal/cnf"
)

// quick returns a heavily scaled-down config so harness tests stay fast;
// the experiment *machinery* is under test here, not the timings.
func quick() Config { return Config{Seed: 1, Scale: 8} }

func TestLoadDataset(t *testing.T) {
	ds, err := quick().LoadDataset("V1")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trace.Len() != 1800/8 {
		t.Errorf("frames = %d", ds.Trace.Len())
	}
	if _, err := quick().LoadDataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadDatasetDeterministic(t *testing.T) {
	a, _ := quick().LoadDataset("M2")
	b, _ := quick().LoadDataset("M2")
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("nondeterministic dataset")
	}
	for i := 0; i < a.Trace.Len(); i++ {
		if !a.Trace.Frame(i).Objects.Equal(b.Trace.Frame(i).Objects) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestTable6(t *testing.T) {
	rows, err := quick().Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	RenderTable6(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Table 6", "V1", "M2", "Obj/F", "Occ/Obj", "F/Obj"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Machinery(t *testing.T) {
	fig, err := quick().Figure4([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subfigures) != 1 {
		t.Fatalf("subfigures = %d", len(fig.Subfigures))
	}
	sf := fig.Subfigures[0]
	if len(sf.Series) != 3 {
		t.Fatalf("series = %d", len(sf.Series))
	}
	for _, s := range sf.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds < 0 {
				t.Fatalf("negative time in %s", s.Label)
			}
		}
		// x must be increasing frame counts.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X <= s.Points[i-1].X {
				t.Fatalf("non-increasing x in %s", s.Label)
			}
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFigure5And6Machinery(t *testing.T) {
	fig5, err := quick().Figure5([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := fig5.Subfigures[0].Series[0].Points; len(got) != 4 {
		t.Fatalf("fig5 points = %d", len(got))
	}
	fig6, err := quick().Figure6([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := fig6.Subfigures[0].Series[0].Points; len(got) != 4 {
		t.Fatalf("fig6 points = %d", len(got))
	}
}

func TestFigure7Machinery(t *testing.T) {
	fig, err := quick().Figure7([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Subfigures[0].Series[0].Points
	if len(pts) != 4 || pts[0].X != 0 || pts[3].X != 3 {
		t.Fatalf("po sweep = %+v", pts)
	}
}

func TestFigure8Machinery(t *testing.T) {
	fig, err := quick().Figure8([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subfigures[0].Series) != 3 {
		t.Fatalf("series = %d", len(fig.Subfigures[0].Series))
	}
	if len(fig.Subfigures[0].Series[0].Points) != 5 {
		t.Fatalf("points = %d", len(fig.Subfigures[0].Series[0].Points))
	}
}

func TestFigure9Machinery(t *testing.T) {
	fig, err := quick().Figure9([]string{"M1"})
	if err != nil {
		t.Fatal(err)
	}
	sf := fig.Subfigures[0]
	labels := map[string]bool{}
	for _, s := range sf.Series {
		labels[s.Label] = true
		if len(s.Points) != 5 {
			t.Fatalf("series %s points = %d", s.Label, len(s.Points))
		}
	}
	for _, want := range []string{"NAIVE_E", "MFS_E", "SSG_E", "MFS_O", "SSG_O"} {
		if !labels[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

func TestFigure10Machinery(t *testing.T) {
	fig, err := quick().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subfigures) != 1 {
		t.Fatalf("subfigures = %d", len(fig.Subfigures))
	}
	for _, s := range fig.Subfigures[0].Series {
		if len(s.Points) != 6 {
			t.Fatalf("series %s covers %d datasets", s.Label, len(s.Points))
		}
	}
}

func TestMixedWorkload(t *testing.T) {
	qs := MixedWorkload(25, 300, 240, 7)
	if len(qs) != 25 {
		t.Fatalf("n = %d", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query: %v", err)
		}
		if seen[q.ID] {
			t.Fatalf("duplicate id %d", q.ID)
		}
		seen[q.ID] = true
		if q.Window != 300 || q.Duration != 240 {
			t.Fatalf("window/duration = %d/%d", q.Window, q.Duration)
		}
	}
	// Deterministic in seed.
	again := MixedWorkload(25, 300, 240, 7)
	for i := range qs {
		if qs[i].String() != again[i].String() {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestGEWorkload(t *testing.T) {
	for _, nmin := range []int{1, 5, 9} {
		qs := GEWorkload(100, nmin, 300, 240, 3)
		if len(qs) != 100 {
			t.Fatalf("n = %d", len(qs))
		}
		min := 1 << 30
		for _, q := range qs {
			if !q.GEOnly() {
				t.Fatalf("non-GE query generated: %s", q)
			}
			for _, cl := range q.Clauses {
				for _, c := range cl {
					if c.N < min {
						min = c.N
					}
				}
			}
		}
		if min != nmin {
			t.Errorf("nmin = %d, want %d", min, nmin)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	sf := Subfigure{Series: []Series{
		{Label: "A", Points: []Point{{X: 1, Seconds: 4}}},
		{Label: "B", Points: []Point{{X: 1, Seconds: 2}}},
	}}
	if got := Speedup(sf, "A", "B"); got != 2 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(sf, "A", "missing"); got != 0 {
		t.Errorf("Speedup vs missing = %v", got)
	}
}

func TestWorkloadsEvaluable(t *testing.T) {
	// Workload queries must index cleanly in CNFEvalE.
	if _, err := cnf.NewEvalE(MixedWorkload(10, 30, 20, 1)...); err != nil {
		t.Fatal(err)
	}
	if _, err := cnf.NewEvalE(GEWorkload(10, 3, 30, 20, 1)...); err != nil {
		t.Fatal(err)
	}
}
