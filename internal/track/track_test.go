package track

import (
	"testing"

	"tvq/internal/video"
	"tvq/internal/vr"
)

func scene(t *testing.T) *video.Scene {
	t.Helper()
	sc, err := video.Generate(video.D1(), 21)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestZeroNoiseMatchesGroundTruth(t *testing.T) {
	sc := scene(t)
	reg := vr.StandardRegistry()
	got, err := Detect(sc, reg, Noise{})
	if err != nil {
		t.Fatal(err)
	}
	want := DetectPerfect(sc, vr.StandardRegistry())
	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if !got.Frame(i).Objects.Equal(want.Frame(i).Objects) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestMissesReduceAppearances(t *testing.T) {
	sc := scene(t)
	reg := vr.StandardRegistry()
	clean, _ := Detect(sc, reg, Noise{Seed: 1})
	noisy, err := Detect(sc, vr.StandardRegistry(), Noise{MissProb: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs, ns := vr.ComputeStats(clean), vr.ComputeStats(noisy)
	if ns.ObjPerFrame >= cs.ObjPerFrame {
		t.Errorf("misses did not reduce density: %.2f vs %.2f", ns.ObjPerFrame, cs.ObjPerFrame)
	}
	if ns.OccPerObj <= cs.OccPerObj {
		t.Errorf("misses did not add occlusion gaps: %.2f vs %.2f", ns.OccPerObj, cs.OccPerObj)
	}
}

func TestSwitchesIncreaseUniqueIDs(t *testing.T) {
	sc := scene(t)
	reg := vr.StandardRegistry()
	clean, _ := Detect(sc, reg, Noise{Seed: 2})
	noisy, err := Detect(sc, vr.StandardRegistry(), Noise{SwitchProb: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vr.ComputeStats(noisy).Objects, vr.ComputeStats(clean).Objects; got <= want {
		t.Errorf("switches did not mint new ids: %d vs %d", got, want)
	}
}

func TestFalsePositivesAddObjects(t *testing.T) {
	sc := scene(t)
	reg := vr.StandardRegistry()
	clean, _ := Detect(sc, reg, Noise{Seed: 3})
	noisy, err := Detect(sc, vr.StandardRegistry(), Noise{FalsePositiveRate: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vr.ComputeStats(noisy).Objects, vr.ComputeStats(clean).Objects; got <= want {
		t.Errorf("false positives did not add objects: %d vs %d", got, want)
	}
}

func TestDetectDeterministic(t *testing.T) {
	sc := scene(t)
	n := Noise{MissProb: 0.1, SwitchProb: 0.005, FalsePositiveRate: 0.02, Seed: 9}
	a, err := Detect(sc, vr.StandardRegistry(), n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(sc, vr.StandardRegistry(), n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ across identical runs")
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Frame(i).Objects.Equal(b.Frame(i).Objects) {
			t.Fatalf("frame %d differs across identical runs", i)
		}
	}
}

func TestNoiseValidation(t *testing.T) {
	sc := scene(t)
	reg := vr.StandardRegistry()
	bad := []Noise{
		{MissProb: -0.1},
		{MissProb: 1.0},
		{SwitchProb: -0.1},
		{SwitchProb: 1.0},
		{FalsePositiveRate: -1},
	}
	for i, n := range bad {
		if _, err := Detect(sc, reg, n); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestClassConsistencyUnderNoise(t *testing.T) {
	sc := scene(t)
	tr, err := Detect(sc, vr.StandardRegistry(), Noise{
		MissProb: 0.15, SwitchProb: 0.01, FalsePositiveRate: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.NewTrace(tr.Tuples()); err != nil {
		t.Fatalf("noise broke class consistency: %v", err)
	}
}
