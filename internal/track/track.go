// Package track simulates the object detection and tracking layer of the
// paper's architecture (Figure 2). The paper runs Faster R-CNN for
// detection and Deep SORT for tracking; those models are unavailable in a
// pure-Go, offline build, so this package stands in for them: it takes
// ground truth from package video and produces the structured relation
// VR(fid, id, class) with the imperfections the paper's query semantics
// were designed to absorb —
//
//   - detection misses: an object present in the scene is absent from a
//     frame's detections (adds occlusion-like gaps);
//   - identity switches: the tracker loses an object mid-life and assigns
//     it a fresh identifier (the tracking errors discussed in §1);
//   - false positives: spurious short-lived detections.
//
// All noise is deterministic in the configured seed, so experiments are
// reproducible. A zero Noise value reproduces ground truth exactly.
package track

import (
	"fmt"
	"math"
	"math/rand"

	"tvq/internal/objset"
	"tvq/internal/video"
	"tvq/internal/vr"
)

// Noise configures tracker imperfections. Probabilities are per
// object-frame unless stated otherwise.
type Noise struct {
	// MissProb is the probability that a present object goes undetected
	// in a frame.
	MissProb float64
	// SwitchProb is the probability per object-frame that the tracker
	// loses the object's identity: subsequent detections of the object
	// carry a fresh identifier.
	SwitchProb float64
	// FalsePositiveRate is the expected number of spurious detections
	// per frame; each spurious object persists for a handful of frames.
	FalsePositiveRate float64
	// FalsePositiveClass is the class assigned to spurious detections;
	// defaults to "car".
	FalsePositiveClass string
	// Seed makes the noise deterministic.
	Seed int64
}

func (n Noise) validate() error {
	if n.MissProb < 0 || n.MissProb >= 1 {
		return fmt.Errorf("track: miss probability %.3f out of [0, 1)", n.MissProb)
	}
	if n.SwitchProb < 0 || n.SwitchProb >= 1 {
		return fmt.Errorf("track: switch probability %.3f out of [0, 1)", n.SwitchProb)
	}
	if n.FalsePositiveRate < 0 {
		return fmt.Errorf("track: negative false-positive rate")
	}
	return nil
}

// Detect renders a scene through the simulated detector/tracker and
// returns the extracted relation. Identifier switches allocate fresh ids
// above the scene's id range, exactly as a tracker would mint new track
// ids.
func Detect(sc *video.Scene, reg *vr.Registry, n Noise) (*vr.Trace, error) {
	if err := n.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(n.Seed))

	nextID := objset.ID(1)
	for _, o := range sc.Objects {
		if o.ID >= nextID {
			nextID = o.ID + 1
		}
	}

	classes := make(map[objset.ID]vr.Class)
	perFrame := make([][]objset.ID, sc.Profile.Frames)

	for _, o := range sc.Objects {
		cls := reg.Class(o.Class)
		cur := o.ID
		classes[cur] = cls
		for _, seg := range o.Segments {
			for f := seg.From; f < seg.To; f++ {
				if f < 0 || int(f) >= len(perFrame) {
					continue
				}
				if n.SwitchProb > 0 && r.Float64() < n.SwitchProb {
					cur = nextID
					nextID++
					classes[cur] = cls
				}
				if n.MissProb > 0 && r.Float64() < n.MissProb {
					continue
				}
				perFrame[f] = append(perFrame[f], cur)
			}
		}
	}

	// False positives: Poisson arrivals, short geometric lifetimes.
	if n.FalsePositiveRate > 0 {
		fpClass := n.FalsePositiveClass
		if fpClass == "" {
			fpClass = "car"
		}
		cls := reg.Class(fpClass)
		for f := 0; f < len(perFrame); f++ {
			k := poissonSmall(r, n.FalsePositiveRate)
			for j := 0; j < k; j++ {
				id := nextID
				nextID++
				classes[id] = cls
				life := 1 + r.Intn(5)
				for g := f; g < f+life && g < len(perFrame); g++ {
					perFrame[g] = append(perFrame[g], id)
				}
			}
		}
	}

	frames := make([]objset.Set, len(perFrame))
	for i, ids := range perFrame {
		frames[i] = objset.New(ids...)
	}
	return vr.NewTraceFromFrames(frames, classes), nil
}

// DetectPerfect renders a scene with no noise: ground-truth tracking.
func DetectPerfect(sc *video.Scene, reg *vr.Registry) *vr.Trace {
	return sc.Render(reg)
}

func poissonSmall(r *rand.Rand, lambda float64) int {
	// Inversion by sequential search; lambda ≤ ~5 in practice.
	p := r.Float64()
	term := math.Exp(-lambda) // e^-λ · λ^k / k! for k = 0
	cum := term
	k := 0
	for cum < p && k < 100 {
		k++
		term *= lambda / float64(k)
		cum += term
	}
	return k
}
