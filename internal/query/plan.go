package query

import (
	"math/bits"
	"slices"

	"tvq/internal/cnf"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

// The shared multi-query evaluation plan. Instead of indexing one
// posting per (query, clause) condition the way cnf.EvalE does, the
// plan hash-conses the query set three levels deep — mirroring how
// objset.Interner hash-conses object sets into handles:
//
//	predicate := one distinct `label θ n` or `#id` condition
//	clause    := sorted set of predicate handles (a disjunction)
//	body      := sorted set of clause handles (a query's CNF)
//
// Every level is refcounted with a free list, so Subscribe/Cancel patch
// the plan incrementally — add or remove one subscriber, release
// orphaned handles — and, once the node and scratch capacities have
// warmed up, allocate nothing. Each distinct predicate is evaluated
// once per state per frame regardless of how many queries share it:
// firing a predicate stamps its clauses (each clause counted once per
// state, however many of its predicates fired) and bumps a counter on
// each clause's bodies; a body whose counter reaches its clause count
// is satisfied, and its matches fan out to the subscribed queries
// through a bitset mask over dense subscriber slots. Per-frame cost
// therefore tracks the number of distinct predicates, clauses and
// bodies — not the number of subscriptions.
type plan struct {
	reg *vr.Registry

	preds    []predNode
	predFree []uint32
	predOf   map[cnf.Condition]uint32

	clauses    []clauseNode
	clauseFree []uint32
	clauseOf   map[uint64][]uint32 // content hash → chain of clause ids

	bodies   []bodyNode
	bodyFree []uint32
	bodyOf   map[uint64][]uint32 // content hash → chain of body ids

	labels  []labelIndex   // count-predicate scan indexes, one per label ever seen
	labelOf map[string]int // label → index into labels
	ids     map[uint32]uint32

	subs     []subscriber
	slotFree []int
	slotOf   map[int]int // query id → slot

	// Evaluation scratch, epoch-stamped so no per-state clearing; its
	// reuse is one reason the evaluator is not safe for concurrent use.
	epoch       uint64
	clauseStamp []uint64
	bodyStamp   []uint64
	bodyCount   []uint32
	matchedBuf  []uint32

	// Patch scratch, reused across add calls.
	condBuf   []cnf.Condition
	predBuf   []uint32
	clauseBuf []uint32

	// gen counts plan mutations; consumers holding derived state (the
	// §5.3 termination memo) key their caches on it.
	gen uint64
	// nonGE counts live predicates that are neither ≥ nor identity
	// constraints, so GEOnly is O(1) under patching.
	nonGE int
}

type predNode struct {
	cond    cnf.Condition
	refs    int32    // clauses containing this predicate
	clauses []uint32 // their ids
}

type clauseNode struct {
	preds  []uint32 // sorted distinct predicate ids; content identity
	hash   uint64
	refs   int32    // bodies containing this clause
	bodies []uint32 // their ids
}

type bodyNode struct {
	clauses []uint32 // sorted distinct clause ids; content identity
	hash    uint64
	refs    int32    // subscribers sharing this body
	subs    []uint64 // subscriber-slot bitmask
}

type subscriber struct {
	qid      int
	duration int // re-checked at emission; the generator push-down uses the group minimum
	body     uint32
}

// scanEntry is one row of an ordered inequality index. Hash-consing
// guarantees at most one entry per (label, op, n), so the lists stay
// short no matter how many queries share a threshold.
type scanEntry struct {
	n    int
	pred uint32
}

// labelIndex is the per-label scan state: the ≥ list ascending, the ≤
// list descending, and = as a point lookup (§5.2). Indexes are kept
// (empty) when their last predicate is released, so re-adding a label
// allocates nothing. class/known are refreshed from the registry once
// per evaluation pass, matching the seed's dynamic label resolution.
type labelIndex struct {
	label string
	class vr.Class
	known bool
	live  int // live predicates over this label
	ge    []scanEntry
	le    []scanEntry
	eq    map[int]uint32
}

func newPlan(reg *vr.Registry) *plan {
	return &plan{
		reg:      reg,
		predOf:   make(map[cnf.Condition]uint32),
		clauseOf: make(map[uint64][]uint32),
		bodyOf:   make(map[uint64][]uint32),
		labelOf:  make(map[string]int),
		ids:      make(map[uint32]uint32),
		slotOf:   make(map[int]int),
	}
}

func (p *plan) has(qid int) bool {
	_, ok := p.slotOf[qid]
	return ok
}

func (p *plan) len() int { return len(p.slotOf) }

// add registers one already-validated query: its clauses are
// normalized, interned bottom-up, and the query gets a dense subscriber
// slot set in its body's fan-out mask.
//
//tvq:noalloc
func (p *plan) add(q cnf.Query) {
	p.clauseBuf = p.clauseBuf[:0]
	for _, d := range q.Clauses {
		p.condBuf = d.AppendNormalized(p.condBuf[:0])
		p.predBuf = p.predBuf[:0]
		for _, c := range p.condBuf {
			p.predBuf = append(p.predBuf, p.internPred(c))
		}
		slices.Sort(p.predBuf)
		p.clauseBuf = append(p.clauseBuf, p.internClause(p.predBuf))
	}
	slices.Sort(p.clauseBuf)
	p.clauseBuf = slices.Compact(p.clauseBuf) // repeated clauses AND to one
	bid := p.internBody(p.clauseBuf)
	p.bodies[bid].refs++

	slot := p.allocSlot()
	p.subs[slot] = subscriber{qid: q.ID, duration: q.Duration, body: bid}
	p.slotOf[q.ID] = slot
	p.setSub(bid, slot)
	p.gen++
}

// remove deregisters a query, releasing its slot and any predicate,
// clause or body handles the removal orphans. It reports whether the
// query was present.
//
//tvq:noalloc
func (p *plan) remove(qid int) bool {
	slot, ok := p.slotOf[qid]
	if !ok {
		return false
	}
	delete(p.slotOf, qid)
	sub := p.subs[slot]
	p.subs[slot] = subscriber{}
	p.slotFree = append(p.slotFree, slot)

	bid := sub.body
	b := &p.bodies[bid]
	b.subs[slot/64] &^= 1 << uint(slot%64)
	b.refs--
	if b.refs == 0 {
		p.releaseBody(bid)
	}
	p.gen++
	return true
}

func (p *plan) allocSlot() int {
	if n := len(p.slotFree); n > 0 {
		s := p.slotFree[n-1]
		p.slotFree = p.slotFree[:n-1]
		return s
	}
	p.subs = append(p.subs, subscriber{})
	return len(p.subs) - 1
}

// setSub sets the slot's bit in the body's fan-out mask, growing the
// mask (never shrunk, so growth amortizes to zero) as slots appear.
func (p *plan) setSub(bid uint32, slot int) {
	b := &p.bodies[bid]
	for len(b.subs) <= slot/64 {
		b.subs = append(b.subs, 0)
	}
	b.subs[slot/64] |= 1 << uint(slot%64)
}

// internPred returns the handle of the predicate, creating its node and
// scan-index entry on first use. Reference counts are owned by clause
// creation: a predicate created here is always immediately claimed by a
// new clause (an existing clause implies all its predicates exist).
func (p *plan) internPred(c cnf.Condition) uint32 {
	if pid, ok := p.predOf[c]; ok {
		return pid
	}
	var pid uint32
	if n := len(p.predFree); n > 0 {
		pid = p.predFree[n-1]
		p.predFree = p.predFree[:n-1]
		p.preds[pid] = predNode{cond: c, clauses: p.preds[pid].clauses[:0]}
	} else {
		pid = uint32(len(p.preds))
		p.preds = append(p.preds, predNode{cond: c})
	}
	p.predOf[c] = pid
	if !c.Identity && c.Op != cnf.GE {
		p.nonGE++
	}
	p.indexPred(c, pid)
	return pid
}

// indexPred inserts the predicate into its label's scan index (or the
// identity table).
func (p *plan) indexPred(c cnf.Condition, pid uint32) {
	if c.Identity {
		p.ids[uint32(c.N)] = pid
		return
	}
	li, ok := p.labelOf[c.Label]
	if !ok {
		li = len(p.labels)
		p.labels = append(p.labels, labelIndex{label: c.Label, eq: make(map[int]uint32)})
		p.labelOf[c.Label] = li
	}
	lx := &p.labels[li]
	lx.live++
	switch c.Op {
	case cnf.GE:
		lx.ge = insertScan(lx.ge, scanEntry{n: c.N, pred: pid}, true)
	case cnf.LE:
		lx.le = insertScan(lx.le, scanEntry{n: c.N, pred: pid}, false)
	case cnf.EQ:
		lx.eq[c.N] = pid
	}
}

func (p *plan) releasePred(pid uint32) {
	c := p.preds[pid].cond
	delete(p.predOf, c)
	if !c.Identity && c.Op != cnf.GE {
		p.nonGE--
	}
	if c.Identity {
		delete(p.ids, uint32(c.N))
	} else {
		lx := &p.labels[p.labelOf[c.Label]]
		lx.live--
		switch c.Op {
		case cnf.GE:
			lx.ge = removeScan(lx.ge, pid)
		case cnf.LE:
			lx.le = removeScan(lx.le, pid)
		case cnf.EQ:
			delete(lx.eq, c.N)
		}
	}
	p.predFree = append(p.predFree, pid)
}

// insertScan keeps ascending order by threshold when asc, descending
// otherwise. Hash-consing makes thresholds unique per list.
func insertScan(list []scanEntry, en scanEntry, asc bool) []scanEntry {
	i, _ := slices.BinarySearchFunc(list, en, func(a, b scanEntry) int {
		if asc {
			return a.n - b.n
		}
		return b.n - a.n
	})
	list = append(list, scanEntry{})
	copy(list[i+1:], list[i:])
	list[i] = en
	return list
}

func removeScan(list []scanEntry, pid uint32) []scanEntry {
	for i, en := range list {
		if en.pred == pid {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// internClause returns the handle of the clause with exactly the given
// sorted predicate set, creating it (and claiming its predicates) on
// first use. Reference counts are owned by body creation.
func (p *plan) internClause(preds []uint32) uint32 {
	h := cnf.HashUint32s(preds)
	for _, cid := range p.clauseOf[h] {
		if slices.Equal(p.clauses[cid].preds, preds) {
			return cid
		}
	}
	var cid uint32
	if n := len(p.clauseFree); n > 0 {
		cid = p.clauseFree[n-1]
		p.clauseFree = p.clauseFree[:n-1]
		node := &p.clauses[cid]
		node.preds = append(node.preds[:0], preds...)
		node.hash = h
		node.bodies = node.bodies[:0]
	} else {
		cid = uint32(len(p.clauses))
		p.clauses = append(p.clauses, clauseNode{preds: slices.Clone(preds), hash: h})
	}
	p.clauseOf[h] = append(p.clauseOf[h], cid)
	for _, pid := range preds {
		p.preds[pid].refs++
		p.preds[pid].clauses = append(p.preds[pid].clauses, cid)
	}
	return cid
}

func (p *plan) releaseClause(cid uint32) {
	node := &p.clauses[cid]
	p.clauseOf[node.hash] = chainRemove(p.clauseOf[node.hash], cid)
	for _, pid := range node.preds {
		pd := &p.preds[pid]
		pd.clauses = chainRemove(pd.clauses, cid)
		pd.refs--
		if pd.refs == 0 {
			p.releasePred(pid)
		}
	}
	p.clauseFree = append(p.clauseFree, cid)
}

// internBody returns the handle of the body with exactly the given
// sorted clause set, creating it (and claiming its clauses) on first
// use. The caller owns the subscriber refcount.
func (p *plan) internBody(clauses []uint32) uint32 {
	h := cnf.HashUint32s(clauses)
	for _, bid := range p.bodyOf[h] {
		if slices.Equal(p.bodies[bid].clauses, clauses) {
			return bid
		}
	}
	var bid uint32
	if n := len(p.bodyFree); n > 0 {
		bid = p.bodyFree[n-1]
		p.bodyFree = p.bodyFree[:n-1]
		node := &p.bodies[bid]
		node.clauses = append(node.clauses[:0], clauses...)
		node.hash = h
		node.refs = 0
		clear(node.subs)
	} else {
		bid = uint32(len(p.bodies))
		p.bodies = append(p.bodies, bodyNode{clauses: slices.Clone(clauses), hash: h})
	}
	p.bodyOf[h] = append(p.bodyOf[h], bid)
	for _, cid := range clauses {
		p.clauses[cid].refs++
		p.clauses[cid].bodies = append(p.clauses[cid].bodies, bid)
	}
	return bid
}

func (p *plan) releaseBody(bid uint32) {
	node := &p.bodies[bid]
	p.bodyOf[node.hash] = chainRemove(p.bodyOf[node.hash], bid)
	for _, cid := range node.clauses {
		cl := &p.clauses[cid]
		cl.bodies = chainRemove(cl.bodies, bid)
		cl.refs--
		if cl.refs == 0 {
			p.releaseClause(cid)
		}
	}
	p.bodyFree = append(p.bodyFree, bid)
}

// chainRemove deletes one occurrence of v, preserving order (body and
// clause back-references are iterated during evaluation in slice order,
// and the hash chains are short) while keeping capacity for reuse.
func chainRemove(chain []uint32, v uint32) []uint32 {
	for i, x := range chain {
		if x == v {
			return append(chain[:i], chain[i+1:]...)
		}
	}
	return chain
}

// refreshLabels re-resolves each label against the registry — once per
// evaluation pass, so classes registered after a query (the registry
// grows as codecs see new class names) are picked up exactly like the
// per-call lookups of the per-query evaluator.
func (p *plan) refreshLabels() {
	for i := range p.labels {
		lx := &p.labels[i]
		lx.class, lx.known = p.reg.Lookup(lx.label)
	}
}

// satisfied evaluates every distinct predicate once against the
// per-class counts (and the object set, for identity constraints) and
// returns the satisfied body ids. The result aliases internal scratch,
// valid until the next satisfied call. agg is indexed by class;
// unknown labels count zero.
func (p *plan) satisfied(agg []int, objects objset.Set) []uint32 {
	p.growScratch()
	p.epoch++
	p.matchedBuf = p.matchedBuf[:0]
	for i := range p.labels {
		lx := &p.labels[i]
		v := 0
		if lx.known && int(lx.class) < len(agg) {
			v = agg[lx.class]
		}
		for _, en := range lx.ge { // ascending: stop at first n > v
			if en.n > v {
				break
			}
			p.firePred(en.pred)
		}
		for _, en := range lx.le { // descending: stop at first n < v
			if en.n < v {
				break
			}
			p.firePred(en.pred)
		}
		if pid, ok := lx.eq[v]; ok {
			p.firePred(pid)
		}
	}
	for id, pid := range p.ids {
		if objects.Contains(id) {
			p.firePred(pid)
		}
	}
	return p.matchedBuf
}

// firePred marks the predicate satisfied for the current epoch: each of
// its clauses is counted once toward its bodies, and a body whose every
// clause has fired joins the matched buffer.
func (p *plan) firePred(pid uint32) {
	for _, cid := range p.preds[pid].clauses {
		if p.clauseStamp[cid] == p.epoch {
			continue
		}
		p.clauseStamp[cid] = p.epoch
		for _, bid := range p.clauses[cid].bodies {
			if p.bodyStamp[bid] != p.epoch {
				p.bodyStamp[bid] = p.epoch
				p.bodyCount[bid] = 0
			}
			p.bodyCount[bid]++
			if int(p.bodyCount[bid]) == len(p.bodies[bid].clauses) {
				p.matchedBuf = append(p.matchedBuf, bid)
			}
		}
	}
}

func (p *plan) growScratch() {
	for len(p.clauseStamp) < len(p.clauses) {
		p.clauseStamp = append(p.clauseStamp, 0)
	}
	for len(p.bodyStamp) < len(p.bodies) {
		p.bodyStamp = append(p.bodyStamp, 0)
		p.bodyCount = append(p.bodyCount, 0)
	}
}

// forEachSub calls fn for every subscriber of the body, walking the set
// bits of its fan-out mask word-parallel.
func (p *plan) forEachSub(bid uint32, fn func(sub *subscriber)) {
	for wi, word := range p.bodies[bid].subs {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			fn(&p.subs[wi*64+bit])
		}
	}
}
