package query

import (
	"reflect"
	"testing"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

func mkQuery(t *testing.T, id int, text string, w, d int) cnf.Query {
	t.Helper()
	q, err := cnf.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	q.ID, q.Window, q.Duration = id, w, d
	return q
}

// classOf maps odd ids to person (0), even ids to car (1).
func classOf(id objset.ID) vr.Class {
	if id%2 == 1 {
		return 0
	}
	return 1
}

// buildStates runs MFS over a tiny feed and returns the last result state
// set, so tests exercise real states.
func buildStates(t *testing.T, sets []objset.Set, w, d int) []*core.State {
	t.Helper()
	g := core.NewMFS(core.Config{Window: w, Duration: d})
	var last []*core.State
	for i, s := range sets {
		last = g.Process(vr.Frame{FID: vr.FrameID(i), Objects: s})
	}
	return last
}

func TestNewEvaluatorValidation(t *testing.T) {
	reg := vr.StandardRegistry()
	if _, err := NewEvaluator(reg, nil); err != nil {
		t.Errorf("empty query set rejected: %v", err)
	}
	qs := []cnf.Query{
		mkQuery(t, 1, "car >= 1", 10, 5),
		mkQuery(t, 2, "car >= 1", 20, 5),
	}
	if _, err := NewEvaluator(reg, qs); err == nil {
		t.Error("mixed windows accepted")
	}
	dup := []cnf.Query{
		mkQuery(t, 1, "car >= 1", 10, 5),
		mkQuery(t, 1, "person >= 1", 10, 5),
	}
	if _, err := NewEvaluator(reg, dup); err == nil {
		t.Error("duplicate ids accepted")
	}
	bad := mkQuery(t, 1, "car >= 1", 10, 5)
	bad.Duration = 99
	if _, err := NewEvaluator(reg, []cnf.Query{bad}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestMinDurationAndWindow(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 1", 10, 7),
		mkQuery(t, 2, "car >= 1", 10, 3),
		mkQuery(t, 3, "car >= 1", 10, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Window() != 10 {
		t.Errorf("Window = %d", ev.Window())
	}
	if ev.MinDuration() != 3 {
		t.Errorf("MinDuration = %d", ev.MinDuration())
	}
}

func TestClasses(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 1 AND unicorn >= 1", 10, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	keep := ev.Classes()
	carClass, _ := reg.Lookup("car")
	if !keep[carClass] || len(keep) != 1 {
		t.Errorf("Classes = %v", keep)
	}
}

func TestEvaluateStates(t *testing.T) {
	reg := vr.StandardRegistry()
	// Objects 1,3 = person; 2,4 = car.
	ev, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 2", 4, 2),
		mkQuery(t, 2, "person >= 1 AND car >= 1", 4, 2),
		mkQuery(t, 3, "person >= 3", 4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed: {2,4} ×3 frames, then {1,2,4}.
	states := buildStates(t, []objset.Set{
		objset.New(2, 4),
		objset.New(2, 4),
		objset.New(2, 4),
		objset.New(1, 2, 4),
	}, 4, 2)
	matches := ev.EvaluateStates(states, classOf)
	// {2,4} appears in 4 frames: satisfies q1 (2 cars) but not q2/q3.
	var qids []int
	for _, m := range matches {
		qids = append(qids, m.QueryID)
	}
	if !reflect.DeepEqual(qids, []int{1}) {
		t.Fatalf("matches = %+v", matches)
	}
	if got := matches[0].Objects.String(); got != "{2 4}" {
		t.Errorf("objects = %s", got)
	}
	if len(matches[0].Frames) != 4 {
		t.Errorf("frames = %v", matches[0].Frames)
	}
}

func TestPerQueryDurationRecheck(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 1", 5, 1), // permissive: group pushdown = 1
		mkQuery(t, 2, "car >= 1", 5, 4), // strict
	})
	if err != nil {
		t.Fatal(err)
	}
	states := buildStates(t, []objset.Set{
		objset.New(2),
		objset.New(2),
	}, 5, 1)
	matches := ev.EvaluateStates(states, classOf)
	for _, m := range matches {
		if m.QueryID == 2 {
			t.Fatalf("query 2 (d=4) matched with only %d frames", len(m.Frames))
		}
	}
	if len(matches) == 0 {
		t.Fatal("query 1 should match")
	}
}

func TestGEOnlyAndTerminatePredicate(t *testing.T) {
	reg := vr.StandardRegistry()
	ge, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 2", 10, 5),
		mkQuery(t, 2, "person >= 1 AND car >= 1", 10, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ge.GEOnly() {
		t.Fatal("GEOnly = false")
	}
	pred := ge.TerminatePredicate(classOf)
	if pred == nil {
		t.Fatal("TerminatePredicate = nil for ≥-only queries")
	}
	// {2,4}: 2 cars → q1 satisfiable → keep (predicate false).
	if pred(objset.New(2, 4)) {
		t.Error("predicate dropped a satisfying set")
	}
	// {1}: 1 person, 0 cars → neither query satisfiable → drop.
	if !pred(objset.New(1)) {
		t.Error("predicate kept a hopeless set")
	}

	mixed, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 1, "car >= 2 AND person <= 1", 10, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.GEOnly() {
		t.Error("GEOnly = true for mixed query set")
	}
	if mixed.TerminatePredicate(classOf) != nil {
		t.Error("TerminatePredicate != nil for mixed query set")
	}
}

func TestMatchesSortedDeterministically(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, []cnf.Query{
		mkQuery(t, 2, "car >= 1", 4, 1),
		mkQuery(t, 1, "car >= 1", 4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	states := buildStates(t, []objset.Set{
		objset.New(2), objset.New(2, 4),
	}, 4, 1)
	matches := ev.EvaluateStates(states, classOf)
	for i := 1; i < len(matches); i++ {
		if matches[i-1].QueryID > matches[i].QueryID {
			t.Fatalf("matches not sorted by query id: %+v", matches)
		}
	}
}
