// Package query is the Query Evaluation module of the paper's
// architecture (Figure 2, §5): it evaluates CNF count queries against the
// result state sets produced by the MCOS Generation layer, and implements
// the §5.3 result-driven pruning strategy that feeds back into state
// maintenance for ≥-only query sets.
//
// Evaluation runs over a shared multi-query plan (see plan.go): the
// registered query set is compiled once, predicates and clauses are
// hash-consed across queries, each distinct predicate is evaluated once
// per state, and matches fan out to the owning queries through bitset
// masks — so per-frame cost tracks the number of distinct predicates
// and bodies, not the number of subscriptions. Add and Remove patch the
// plan incrementally instead of recompiling it.
package query

import (
	"fmt"
	"sort"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

// Match is one query hit: in the current window, the MCOS Objects
// appears in the frames Frames (at least the query's duration many) and
// its per-class counts satisfy the query.
type Match struct {
	QueryID int
	Objects objset.Set
	Frames  []vr.FrameID
}

// Evaluator evaluates a dynamic set of queries, all sharing one window
// size, against result state sets. Queries with different windows belong
// in different evaluators (the engine groups them, as §3 prescribes).
// An empty evaluator is valid — it matches nothing and adopts the
// window of the first query added — so dynamic paths (a session opened
// with no queries, Subscribe before any frame) never hit a special
// case. An Evaluator is not safe for concurrent use: evaluation reuses
// internal scratch buffers.
type Evaluator struct {
	reg     *vr.Registry
	queries []cnf.Query // registration order, for Queries()
	window  int         // 0 while empty
	p       *plan
}

// NewEvaluator builds an evaluator over queries — possibly none. All
// queries must be valid, share the same window size and have distinct
// ids.
func NewEvaluator(reg *vr.Registry, queries []cnf.Query) (*Evaluator, error) {
	e := &Evaluator{reg: reg, p: newPlan(reg)}
	for _, q := range queries {
		if err := e.Add(q); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Add registers one query, patching the shared plan incrementally:
// predicates and clauses the query shares with registered ones are
// reused, new ones are interned, and the query claims a subscriber
// slot in its body's fan-out mask. On a warm plan (shapes seen before)
// Add allocates nothing.
//
//tvq:noalloc
func (e *Evaluator) Add(q cnf.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if len(q.Clauses) == 0 {
		return fmt.Errorf("query: query %d has no clauses", q.ID)
	}
	if len(e.queries) > 0 && q.Window != e.window {
		return fmt.Errorf("query: query %d window %d differs from group window %d", q.ID, q.Window, e.window)
	}
	if e.p.has(q.ID) {
		return fmt.Errorf("query: duplicate query id %d", q.ID)
	}
	e.p.add(q)
	e.window = q.Window
	e.queries = append(e.queries, q)
	return nil
}

// Remove deregisters a query, releasing its subscriber slot and any
// predicate, clause or body handles no remaining query shares; it
// reports whether the query was present. Removing the last query
// leaves a valid empty evaluator.
//
//tvq:noalloc
func (e *Evaluator) Remove(id int) bool {
	if !e.p.remove(id) {
		return false
	}
	w := 0
	for _, q := range e.queries {
		if q.ID != id {
			e.queries[w] = q
			w++
		}
	}
	e.queries = e.queries[:w]
	if len(e.queries) == 0 {
		e.window = 0
	}
	return true
}

// Has reports whether a query with the given id is registered.
func (e *Evaluator) Has(id int) bool { return e.p.has(id) }

// Len returns the number of registered queries.
func (e *Evaluator) Len() int { return e.p.len() }

// Window returns the shared window size of the evaluator's queries, or
// zero for an empty evaluator (the typed zero value: no query, no
// window).
func (e *Evaluator) Window() int { return e.window }

// MinDuration returns the smallest duration among the queries — the
// push-down threshold for the MCOS generator (§3) — or zero for an
// empty evaluator.
func (e *Evaluator) MinDuration() int {
	if len(e.queries) == 0 {
		return 0
	}
	min := e.queries[0].Duration
	for _, q := range e.queries[1:] {
		if q.Duration < min {
			min = q.Duration
		}
	}
	return min
}

// Generation counts plan patches (Add/Remove); caches derived from the
// plan — the §5.3 termination memo — key on it.
func (e *Evaluator) Generation() uint64 { return e.p.gen }

// Classes returns the set of classes referenced by the queries, resolved
// through the registry; the engine uses it to drop unrequested classes
// before MCOS generation (§3). Labels that are not registered classes are
// skipped (they can never match and evaluate as count zero).
func (e *Evaluator) Classes() map[vr.Class]bool {
	keep := make(map[vr.Class]bool)
	for i := range e.p.labels {
		lx := &e.p.labels[i]
		if lx.live == 0 {
			continue
		}
		if c, ok := e.reg.Lookup(lx.label); ok {
			keep[c] = true
		}
	}
	return keep
}

// EvaluateStates runs the shared plan against a result state set and
// returns all matches, sorted by (query id, object set) for determinism
// (§5.2 step 2). Each state's per-class counts drive one pass over the
// distinct predicates; satisfied bodies fan out to their subscribers,
// each re-checking its own duration (the generator push-down used the
// group's minimum).
func (e *Evaluator) EvaluateStates(states []*core.State, classOf func(objset.ID) vr.Class) []Match {
	if len(e.queries) == 0 || len(states) == 0 {
		return nil
	}
	e.p.refreshLabels()
	nclasses := e.reg.Len()
	var out []Match
	for _, s := range states {
		agg := s.Aggregate(nclasses, classOf)
		frameCount := s.FrameCount()
		for _, bid := range e.p.satisfied(agg, s.Objects) {
			e.p.forEachSub(bid, func(sub *subscriber) {
				if frameCount < sub.duration {
					return
				}
				out = append(out, Match{QueryID: sub.qid, Objects: s.Objects, Frames: s.Frames()})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryID != out[j].QueryID {
			return out[i].QueryID < out[j].QueryID
		}
		return objset.Compare(out[i].Objects, out[j].Objects) < 0
	})
	return out
}

// GEOnly reports whether the §5.3 pruning strategy is applicable: every
// condition of every query uses ≥ (Proposition 1). The plan tracks the
// count of non-≥ predicates, so this is O(1).
func (e *Evaluator) GEOnly() bool { return e.p.nonGE == 0 }

// TerminatePredicate returns the state-termination predicate of §5.3, or
// nil when the query set contains non-≥ conditions. The predicate is
// given to core.Config.Terminate: a newly created state whose object set
// satisfies no query can be dropped immediately, because per-class counts
// of subsets are no larger and ≥ conditions are monotone in the counts.
//
// Decisions are memoized in a core.TerminateMemo keyed to the shared
// plan's generation: a Cancel that shrinks the query set (the only
// plan patch allowed under pruning) invalidates the cache, so the
// predicate always answers for the current plan. The returned predicate
// is not safe for concurrent use.
func (e *Evaluator) TerminatePredicate(classOf func(objset.ID) vr.Class) func(objset.Set) bool {
	if !e.GEOnly() {
		return nil
	}
	memo := core.NewTerminateMemo()
	var agg []int
	return func(objects objset.Set) bool {
		gen := e.p.gen
		if v, ok := memo.Lookup(gen, objects); ok {
			return v
		}
		nclasses := e.reg.Len()
		agg = agg[:0]
		for len(agg) < nclasses {
			agg = append(agg, 0)
		}
		objects.Range(func(id objset.ID) bool {
			if c := int(classOf(id)); c < nclasses {
				agg[c]++
			}
			return true
		})
		e.p.refreshLabels()
		v := len(e.p.satisfied(agg, objects)) == 0
		memo.Store(gen, objects, v)
		return v
	}
}

// Queries returns the evaluator's queries in registration order.
func (e *Evaluator) Queries() []cnf.Query { return e.queries }
