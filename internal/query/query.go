// Package query is the Query Evaluation module of the paper's
// architecture (Figure 2, §5): it evaluates CNF count queries against the
// result state sets produced by the MCOS Generation layer, using the
// CNFEvalE index, and implements the §5.3 result-driven pruning strategy
// that feeds back into state maintenance for ≥-only query sets.
package query

import (
	"fmt"
	"sort"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

// Match is one query hit: in the current window, the MCOS Objects
// appears in the frames Frames (at least the query's duration many) and
// its per-class counts satisfy the query.
type Match struct {
	QueryID int
	Objects objset.Set
	Frames  []vr.FrameID
}

// Evaluator evaluates a fixed set of queries, all sharing one window
// size, against result state sets. Queries with different windows belong
// in different evaluators (the engine groups them, as §3 prescribes).
type Evaluator struct {
	queries []cnf.Query
	index   *cnf.EvalE
	reg     *vr.Registry
	labels  []string
	// byID resolves a query's duration at match time: the generator's
	// push-down uses the group's minimum duration, so individual queries
	// re-check their own.
	byID map[int]cnf.Query

	// countsBuf is the per-state label-count map, reused across states
	// and frames (the index reads it synchronously); one reason the
	// evaluator is not safe for concurrent use.
	countsBuf map[string]int
}

// NewEvaluator builds an evaluator over queries. All queries must share
// the same window size and be valid.
func NewEvaluator(reg *vr.Registry, queries []cnf.Query) (*Evaluator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("query: no queries")
	}
	w := queries[0].Window
	byID := make(map[int]cnf.Query, len(queries))
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Window != w {
			return nil, fmt.Errorf("query: query %d window %d differs from group window %d", q.ID, q.Window, w)
		}
		if _, dup := byID[q.ID]; dup {
			return nil, fmt.Errorf("query: duplicate query id %d", q.ID)
		}
		byID[q.ID] = q
	}
	index, err := cnf.NewEvalE(queries...)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		queries:   queries,
		index:     index,
		reg:       reg,
		labels:    index.Labels(),
		byID:      byID,
		countsBuf: make(map[string]int, len(index.Labels())),
	}, nil
}

// Window returns the shared window size of the evaluator's queries.
func (e *Evaluator) Window() int { return e.queries[0].Window }

// MinDuration returns the smallest duration among the queries — the
// push-down threshold for the MCOS generator (§3).
func (e *Evaluator) MinDuration() int {
	min := e.queries[0].Duration
	for _, q := range e.queries[1:] {
		if q.Duration < min {
			min = q.Duration
		}
	}
	return min
}

// Classes returns the set of classes referenced by the queries, resolved
// through the registry; the engine uses it to drop unrequested classes
// before MCOS generation (§3). Labels that are not registered classes are
// skipped (they can never match and evaluate as count zero).
func (e *Evaluator) Classes() map[vr.Class]bool {
	keep := make(map[vr.Class]bool)
	for _, label := range e.labels {
		if c, ok := e.reg.Lookup(label); ok {
			keep[c] = true
		}
	}
	return keep
}

// counts derives the per-label object counts of a state, using the
// state's cached per-class aggregate (§5.2 step 2a). The returned map is
// the evaluator's reusable buffer, valid until the next call.
func (e *Evaluator) counts(s *core.State, classOf func(objset.ID) vr.Class) map[string]int {
	agg := s.Aggregate(e.reg.Len(), classOf)
	clear(e.countsBuf)
	for _, label := range e.labels {
		if c, ok := e.reg.Lookup(label); ok {
			e.countsBuf[label] = agg[c]
		}
	}
	return e.countsBuf
}

// EvaluateStates runs every query against a result state set and returns
// all matches, sorted by (query id, object set) for determinism (§5.2
// step 2).
func (e *Evaluator) EvaluateStates(states []*core.State, classOf func(objset.ID) vr.Class) []Match {
	var out []Match
	for _, s := range states {
		counts := e.counts(s, classOf)
		for _, qid := range e.index.MatchesSet(counts, s.Objects.Contains) {
			if s.FrameCount() < e.byID[qid].Duration {
				continue // group push-down used the minimum duration
			}
			out = append(out, Match{QueryID: qid, Objects: s.Objects, Frames: s.Frames()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryID != out[j].QueryID {
			return out[i].QueryID < out[j].QueryID
		}
		return objset.Compare(out[i].Objects, out[j].Objects) < 0
	})
	return out
}

// GEOnly reports whether the §5.3 pruning strategy is applicable: every
// condition of every query uses ≥ (Proposition 1).
func (e *Evaluator) GEOnly() bool { return e.index.GEOnly() }

// TerminatePredicate returns the state-termination predicate of §5.3, or
// nil when the query set contains non-≥ conditions. The predicate is
// given to core.Config.Terminate: a newly created state whose object set
// satisfies no query can be dropped immediately, because per-class counts
// of subsets are no larger and ≥ conditions are monotone in the counts.
//
// Decisions are memoized per object set — the predicate depends only on
// per-class counts, which are fixed for a given set — so a set that is
// re-derived as the window slides pays the index scan once. The memo
// keys on the set's 64-bit content hash with an exact-equality chain on
// collisions, so a memo hit allocates nothing (the seed built a key
// string per call). The returned predicate is not safe for concurrent
// use.
func (e *Evaluator) TerminatePredicate(classOf func(objset.ID) vr.Class) func(objset.Set) bool {
	if !e.GEOnly() {
		return nil
	}
	type memoEntry struct {
		set objset.Set
		v   bool
	}
	nclasses := e.reg.Len()
	memo := make(map[uint64][]memoEntry)
	counts := make(map[string]int, len(e.labels))
	agg := make([]int, nclasses)
	return func(objects objset.Set) bool {
		key := objects.Hash()
		for _, m := range memo[key] {
			if m.set.Equal(objects) {
				return m.v
			}
		}
		for i := range agg {
			agg[i] = 0
		}
		objects.Range(func(id objset.ID) bool {
			if c := int(classOf(id)); c < nclasses {
				agg[c]++
			}
			return true
		})
		for _, label := range e.labels {
			if c, ok := e.reg.Lookup(label); ok {
				counts[label] = agg[c]
			}
		}
		v := !e.index.AnySatisfiedSet(counts, objects.Contains)
		// objects may be scratch-backed (generators probe with transient
		// intersections); the memo must own its copy.
		memo[key] = append(memo[key], memoEntry{set: objects.Clone(), v: v})
		return v
	}
}

// Queries returns the evaluator's queries.
func (e *Evaluator) Queries() []cnf.Query { return e.queries }
