// Package query is the Query Evaluation module of the paper's
// architecture (Figure 2, §5): it evaluates CNF count queries against the
// result state sets produced by the MCOS Generation layer, using the
// CNFEvalE index, and implements the §5.3 result-driven pruning strategy
// that feeds back into state maintenance for ≥-only query sets.
package query

import (
	"fmt"
	"sort"

	"tvq/internal/cnf"
	"tvq/internal/core"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

// Match is one query hit: in the current window, the MCOS Objects
// appears in the frames Frames (at least the query's duration many) and
// its per-class counts satisfy the query.
type Match struct {
	QueryID int
	Objects objset.Set
	Frames  []vr.FrameID
}

// Evaluator evaluates a fixed set of queries, all sharing one window
// size, against result state sets. Queries with different windows belong
// in different evaluators (the engine groups them, as §3 prescribes).
type Evaluator struct {
	queries []cnf.Query
	index   *cnf.EvalE
	reg     *vr.Registry
	labels  []string
	// byID resolves a query's duration at match time: the generator's
	// push-down uses the group's minimum duration, so individual queries
	// re-check their own.
	byID map[int]cnf.Query
}

// NewEvaluator builds an evaluator over queries. All queries must share
// the same window size and be valid.
func NewEvaluator(reg *vr.Registry, queries []cnf.Query) (*Evaluator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("query: no queries")
	}
	w := queries[0].Window
	byID := make(map[int]cnf.Query, len(queries))
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Window != w {
			return nil, fmt.Errorf("query: query %d window %d differs from group window %d", q.ID, q.Window, w)
		}
		if _, dup := byID[q.ID]; dup {
			return nil, fmt.Errorf("query: duplicate query id %d", q.ID)
		}
		byID[q.ID] = q
	}
	index, err := cnf.NewEvalE(queries...)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		queries: queries,
		index:   index,
		reg:     reg,
		labels:  index.Labels(),
		byID:    byID,
	}, nil
}

// Window returns the shared window size of the evaluator's queries.
func (e *Evaluator) Window() int { return e.queries[0].Window }

// MinDuration returns the smallest duration among the queries — the
// push-down threshold for the MCOS generator (§3).
func (e *Evaluator) MinDuration() int {
	min := e.queries[0].Duration
	for _, q := range e.queries[1:] {
		if q.Duration < min {
			min = q.Duration
		}
	}
	return min
}

// Classes returns the set of classes referenced by the queries, resolved
// through the registry; the engine uses it to drop unrequested classes
// before MCOS generation (§3). Labels that are not registered classes are
// skipped (they can never match and evaluate as count zero).
func (e *Evaluator) Classes() map[vr.Class]bool {
	keep := make(map[vr.Class]bool)
	for _, label := range e.labels {
		if c, ok := e.reg.Lookup(label); ok {
			keep[c] = true
		}
	}
	return keep
}

// counts derives the per-label object counts of a state, using the
// state's cached per-class aggregate (§5.2 step 2a).
func (e *Evaluator) counts(s *core.State, classOf func(objset.ID) vr.Class) map[string]int {
	agg := s.Aggregate(e.reg.Len(), classOf)
	counts := make(map[string]int, len(e.labels))
	for _, label := range e.labels {
		if c, ok := e.reg.Lookup(label); ok {
			counts[label] = agg[c]
		}
	}
	return counts
}

// EvaluateStates runs every query against a result state set and returns
// all matches, sorted by (query id, object set) for determinism (§5.2
// step 2).
func (e *Evaluator) EvaluateStates(states []*core.State, classOf func(objset.ID) vr.Class) []Match {
	var out []Match
	for _, s := range states {
		counts := e.counts(s, classOf)
		for _, qid := range e.index.MatchesSet(counts, s.Objects.Contains) {
			if s.FrameCount() < e.byID[qid].Duration {
				continue // group push-down used the minimum duration
			}
			out = append(out, Match{QueryID: qid, Objects: s.Objects, Frames: s.Frames()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryID != out[j].QueryID {
			return out[i].QueryID < out[j].QueryID
		}
		return out[i].Objects.Key() < out[j].Objects.Key()
	})
	return out
}

// GEOnly reports whether the §5.3 pruning strategy is applicable: every
// condition of every query uses ≥ (Proposition 1).
func (e *Evaluator) GEOnly() bool { return e.index.GEOnly() }

// TerminatePredicate returns the state-termination predicate of §5.3, or
// nil when the query set contains non-≥ conditions. The predicate is
// given to core.Config.Terminate: a newly created state whose object set
// satisfies no query can be dropped immediately, because per-class counts
// of subsets are no larger and ≥ conditions are monotone in the counts.
//
// Decisions are memoized per object set — the predicate depends only on
// per-class counts, which are fixed for a given set — so a set that is
// re-derived as the window slides pays the index scan once. The returned
// predicate is not safe for concurrent use.
func (e *Evaluator) TerminatePredicate(classOf func(objset.ID) vr.Class) func(objset.Set) bool {
	if !e.GEOnly() {
		return nil
	}
	nclasses := e.reg.Len()
	memo := make(map[string]bool)
	counts := make(map[string]int, len(e.labels))
	agg := make([]int, nclasses)
	return func(objects objset.Set) bool {
		key := objects.Key()
		if v, ok := memo[key]; ok {
			return v
		}
		for i := range agg {
			agg[i] = 0
		}
		for _, id := range objects.IDs() {
			if c := int(classOf(id)); c < nclasses {
				agg[c]++
			}
		}
		for _, label := range e.labels {
			if c, ok := e.reg.Lookup(label); ok {
				counts[label] = agg[c]
			}
		}
		v := !e.index.AnySatisfiedSet(counts, objects.Contains)
		memo[key] = v
		return v
	}
}

// Queries returns the evaluator's queries.
func (e *Evaluator) Queries() []cnf.Query { return e.queries }
