package query

import (
	"reflect"
	"testing"

	"tvq/internal/cnf"
	"tvq/internal/objset"
	"tvq/internal/vr"
)

// TestEmptyEvaluatorZeroValues pins the typed zero-value path: an empty
// evaluator is valid, reports zero window and duration instead of
// panicking, matches nothing, and adopts the window of the first query
// added (the open-session-then-Subscribe-first flow).
func TestEmptyEvaluatorZeroValues(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Window() != 0 || ev.MinDuration() != 0 || ev.Len() != 0 {
		t.Fatalf("empty evaluator: Window=%d MinDuration=%d Len=%d, want all zero",
			ev.Window(), ev.MinDuration(), ev.Len())
	}
	states := buildStates(t, []objset.Set{objset.New(2, 4), objset.New(2, 4)}, 4, 1)
	if m := ev.EvaluateStates(states, classOf); m != nil {
		t.Fatalf("empty evaluator matched: %+v", m)
	}
	if keep := ev.Classes(); len(keep) != 0 {
		t.Fatalf("empty evaluator Classes = %v", keep)
	}

	if err := ev.Add(mkQuery(t, 7, "car >= 1", 4, 2)); err != nil {
		t.Fatal(err)
	}
	if ev.Window() != 4 || ev.MinDuration() != 2 || ev.Len() != 1 {
		t.Fatalf("after first Add: Window=%d MinDuration=%d Len=%d",
			ev.Window(), ev.MinDuration(), ev.Len())
	}
	if err := ev.Add(mkQuery(t, 8, "car >= 1", 9, 2)); err == nil {
		t.Fatal("mismatched window accepted after first Add")
	}
	if m := ev.EvaluateStates(states, classOf); len(m) == 0 || m[0].QueryID != 7 {
		t.Fatalf("added query did not match: %+v", m)
	}

	if !ev.Remove(7) {
		t.Fatal("Remove(7) = false")
	}
	if ev.Window() != 0 || ev.MinDuration() != 0 || ev.Len() != 0 {
		t.Fatalf("after removing last query: Window=%d MinDuration=%d Len=%d",
			ev.Window(), ev.MinDuration(), ev.Len())
	}
	if ev.Remove(7) {
		t.Fatal("Remove(7) twice = true")
	}
}

// liveNodes reports the plan's live (non-freed) predicate, clause and
// body counts.
func liveNodes(p *plan) (preds, clauses, bodies int) {
	return len(p.preds) - len(p.predFree),
		len(p.clauses) - len(p.clauseFree),
		len(p.bodies) - len(p.bodyFree)
}

// TestPlanSharingAndRelease checks hash-consing across queries: shared
// predicates, clauses and whole bodies collapse to single nodes, and
// removal releases exactly the handles no remaining query holds.
func TestPlanSharingAndRelease(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := ev.p

	// Two queries with identical bodies (clause order and duplicate
	// conditions must not matter), one overlapping, one disjoint.
	same1 := mkQuery(t, 1, "(car >= 2 OR person >= 1) AND bus >= 1", 10, 3)
	same2 := mkQuery(t, 2, "bus >= 1 AND (person >= 1 OR car >= 2 OR person >= 1)", 10, 5)
	overlap := mkQuery(t, 3, "car >= 2 AND bus >= 1", 10, 4)
	disjoint := mkQuery(t, 4, "truck = 2", 10, 4)
	for _, q := range []cnf.Query{same1, same2, overlap, disjoint} {
		if err := ev.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	// Distinct predicates: car>=2, person>=1, bus>=1, truck=2.
	// Distinct clauses: {car∨person}, {bus}, {car}, {truck}.
	// Distinct bodies: same1/same2 share one, overlap, disjoint.
	preds, clauses, bodies := liveNodes(p)
	if preds != 4 || clauses != 4 || bodies != 3 {
		t.Fatalf("live nodes = %d preds, %d clauses, %d bodies; want 4, 4, 3", preds, clauses, bodies)
	}
	if p.bodies[p.subs[p.slotOf[1]].body].refs != 2 {
		t.Fatalf("shared body refs = %d, want 2", p.bodies[p.subs[p.slotOf[1]].body].refs)
	}
	if p.subs[p.slotOf[1]].body != p.subs[p.slotOf[2]].body {
		t.Fatal("identical queries did not share a body")
	}

	// Removing one of the twins keeps every node live.
	ev.Remove(2)
	if preds, clauses, bodies = liveNodes(p); preds != 4 || clauses != 4 || bodies != 3 {
		t.Fatalf("after Remove(2): %d/%d/%d live, want 4/4/3", preds, clauses, bodies)
	}
	// Removing the other twin releases its body and the {car∨person}
	// clause; person>=1 was held only by that clause and goes with it,
	// while car>=2 and bus>=1 survive inside overlap's clauses.
	ev.Remove(1)
	if preds, clauses, bodies = liveNodes(p); preds != 3 || clauses != 3 || bodies != 2 {
		t.Fatalf("after Remove(1): %d/%d/%d live, want 3/3/2", preds, clauses, bodies)
	}
	ev.Remove(3)
	if preds, clauses, bodies = liveNodes(p); preds != 1 || clauses != 1 || bodies != 1 {
		t.Fatalf("after Remove(3): %d/%d/%d live, want 1/1/1", preds, clauses, bodies)
	}
	ev.Remove(4)
	if preds, clauses, bodies = liveNodes(p); preds != 0 || clauses != 0 || bodies != 0 {
		t.Fatalf("after removing all: %d/%d/%d live, want 0/0/0", preds, clauses, bodies)
	}
	if len(p.predOf) != 0 || len(p.slotOf) != 0 {
		t.Fatalf("lookup tables not empty: %d preds, %d slots", len(p.predOf), len(p.slotOf))
	}

	// Re-adding reuses freed nodes: the arenas must not grow.
	np, nc, nb := len(p.preds), len(p.clauses), len(p.bodies)
	if err := ev.Add(same1); err != nil {
		t.Fatal(err)
	}
	if len(p.preds) != np || len(p.clauses) != nc || len(p.bodies) != nb {
		t.Fatalf("arenas grew on re-add: %d/%d/%d → %d/%d/%d",
			np, nc, nb, len(p.preds), len(p.clauses), len(p.bodies))
	}
}

// TestPlanIncrementalEqualsBatch drives the same final query set two
// ways — batch construction versus a churny add/remove sequence — and
// asserts byte-identical evaluation output.
func TestPlanIncrementalEqualsBatch(t *testing.T) {
	reg := vr.StandardRegistry()
	final := []cnf.Query{
		mkQuery(t, 1, "car >= 2", 4, 1),
		mkQuery(t, 2, "person >= 1 AND car >= 1", 4, 2),
		mkQuery(t, 3, "(car >= 2 OR person >= 2)", 4, 1),
	}
	churn := []cnf.Query{
		mkQuery(t, 4, "car >= 2", 4, 3),                 // twin of q1's body
		mkQuery(t, 5, "person = 1", 4, 1),               // unique predicate
		mkQuery(t, 6, "car <= 1 AND person >= 1", 4, 2), // unique clause mix
	}

	batch, err := NewEvaluator(reg, final)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewEvaluator(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: add churn queries, the final ones, then strip churn.
	order := []cnf.Query{churn[0], final[0], churn[1], final[1], churn[2], final[2]}
	for _, q := range order {
		if err := inc.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range churn {
		if !inc.Remove(q.ID) {
			t.Fatalf("Remove(%d) = false", q.ID)
		}
	}

	states := buildStates(t, []objset.Set{
		objset.New(2, 4),
		objset.New(1, 2, 4),
		objset.New(1, 3),
		objset.New(1, 2, 3, 4),
	}, 4, 1)
	want := batch.EvaluateStates(states, classOf)
	got := inc.EvaluateStates(states, classOf)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental ≠ batch:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(inc.Queries(), final) {
		t.Fatalf("Queries() = %+v, want %+v", inc.Queries(), final)
	}
}

// TestPlanPatchSteadyStateAllocs pins the zero-allocation property of
// warm plan patches: once node arenas, free lists and scratch buffers
// have seen a shape, a full subscribe/cancel cycle allocates nothing.
func TestPlanPatchSteadyStateAllocs(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := []cnf.Query{
		mkQuery(t, 1, "(car >= 2 OR person >= 1) AND bus >= 1", 10, 3),
		mkQuery(t, 2, "bus >= 1 AND car >= 2", 10, 5),
		mkQuery(t, 3, "truck = 2 AND person <= 4 AND #6", 10, 4),
	}
	cycle := func() {
		for _, q := range qs {
			if err := ev.Add(q); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range qs {
			if !ev.Remove(q.ID) {
				t.Fatalf("Remove(%d) = false", q.ID)
			}
		}
	}
	cycle() // warm arenas and scratch
	cycle()
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state plan patch allocates: %.1f allocs/cycle", allocs)
	}
}

// TestPlanGeneration checks that every patch bumps the generation the
// §5.3 termination memo keys on.
func TestPlanGeneration(t *testing.T) {
	reg := vr.StandardRegistry()
	ev, err := NewEvaluator(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	g0 := ev.Generation()
	if err := ev.Add(mkQuery(t, 1, "car >= 1", 10, 5)); err != nil {
		t.Fatal(err)
	}
	if ev.Generation() == g0 {
		t.Fatal("Add did not bump generation")
	}
	g1 := ev.Generation()
	ev.Remove(1)
	if ev.Generation() == g1 {
		t.Fatal("Remove did not bump generation")
	}
}
