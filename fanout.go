package tvq

import (
	"sync"
	"sync/atomic"
)

// FanoutSink fans one subscription's deliveries out to any number of
// concurrently attached consumers ("taps") without ever blocking the
// session's processing path. Each tap owns a bounded buffer; when a
// tap's consumer falls behind, the oldest buffered delivery is dropped
// to make room — counted per tap, never silently — so one stalled
// network subscriber can neither slow ingestion nor starve its peers.
//
// FanoutSink is the serving-layer complement of ChanSink: ChanSink
// backpressures the whole session on its single consumer (loss-free by
// construction), FanoutSink isolates N subscribers from the hot path
// and from each other (loss-bounded by each tap's buffer). The tvqd
// daemon attaches one FanoutSink per subscription and one tap per
// connected stream.
//
// Taps may attach and detach while the session runs. A delivery is
// fanned out only to taps attached at that moment; a tap attached after
// the sink closed receives an already-closed channel.
type FanoutSink struct {
	mu        sync.Mutex
	taps      map[*Tap]struct{}
	closed    bool
	delivered atomic.Uint64
}

// NewFanoutSink builds a fan-out sink with no taps attached. Deliveries
// with no taps attached are counted and discarded.
func NewFanoutSink() *FanoutSink {
	return &FanoutSink{taps: make(map[*Tap]struct{})}
}

// Tap is one consumer's bounded view of a FanoutSink's delivery stream.
type Tap struct {
	sink    *FanoutSink
	ch      chan Delivery
	dropped atomic.Uint64
	closed  bool // guarded by sink.mu
}

// Tap attaches a new consumer with the given buffer capacity (minimum
// 1) and returns it. The tap's channel closes when the tap is closed,
// the subscription is cancelled, or the session closes.
func (f *FanoutSink) Tap(buffer int) *Tap {
	if buffer < 1 {
		buffer = 1
	}
	t := &Tap{sink: f, ch: make(chan Delivery, buffer)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		t.closed = true
		close(t.ch)
		return t
	}
	f.taps[t] = struct{}{}
	return t
}

// Deliver fans d out to every attached tap. It never blocks: a tap
// whose buffer is full loses its oldest buffered delivery instead
// (recorded in the tap's drop counter).
func (f *FanoutSink) Deliver(d Delivery) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.delivered.Add(1)
	for t := range f.taps {
		select {
		case t.ch <- d:
			continue
		default:
		}
		// Buffer full: evict the oldest entry, then retry once. The
		// consumer may race us for the eviction (good — then the retry
		// finds room) or drain the buffer entirely between the steps
		// (then the retry just succeeds).
		select {
		case <-t.ch:
			t.dropped.Add(1)
		default:
		}
		select {
		case t.ch <- d:
		default:
			t.dropped.Add(1) // consumer refilled the buffer; drop d itself
		}
	}
	return nil
}

// Delivered reports how many deliveries the sink has fanned out since
// creation (whether or not any tap was attached).
func (f *FanoutSink) Delivered() uint64 { return f.delivered.Load() }

// Taps reports the number of currently attached taps.
func (f *FanoutSink) Taps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.taps)
}

// Close detaches every tap (closing their channels) and drops all
// further deliveries. It is idempotent; sessions call it automatically
// when the owning subscription is cancelled or the session closes.
func (f *FanoutSink) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for t := range f.taps {
		t.closed = true
		close(t.ch)
		delete(f.taps, t)
	}
}

// bind implements sessionBound. Deliver never blocks, so the sink needs
// no cancellation channels; attachment is recorded only so closeSink
// fires on subscription end.
func (f *FanoutSink) bind(subDone, sessionDone <-chan struct{}) {}

// closeSink implements sessionBound.
func (f *FanoutSink) closeSink() { f.Close() }

// C is the tap's delivery channel. It closes when the tap or the sink
// closes; buffered deliveries remain readable until drained.
func (t *Tap) C() <-chan Delivery { return t.ch }

// Dropped reports how many deliveries this tap has lost to a full
// buffer since it was attached.
func (t *Tap) Dropped() uint64 { return t.dropped.Load() }

// Close detaches the tap from its sink and closes its channel. It is
// idempotent and safe to call concurrently with deliveries.
func (t *Tap) Close() {
	f := t.sink
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	delete(f.taps, t)
	close(t.ch)
}
