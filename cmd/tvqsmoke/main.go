// tvqsmoke drives a running tvqd daemon end to end over both wire
// formats and exits non-zero if anything diverges. CI points it at a
// freshly started daemon:
//
//	tvqd -addr 127.0.0.1:7800 &
//	tvqsmoke -addr http://127.0.0.1:7800 -frames 400
//
// It generates one synthetic trace, ingests it into two sessions — one
// over the binary wire format, one over JSONL — and requires: identical
// accepted/matches/cursor accounting from both codecs, at least one
// query match, a live stream that delivers exactly the matches the
// ingest reported, and per-codec ingest byte counters in the daemon's
// metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"tvq"
	"tvq/tvqclient"
)

const query = "person >= 2"

func main() {
	log.SetFlags(0)
	log.SetPrefix("tvqsmoke: ")
	addr := flag.String("addr", "http://127.0.0.1:7800", "base URL of the tvqd daemon under test")
	frames := flag.Int("frames", 400, "frames in the generated trace")
	seed := flag.Int64("seed", 7, "trace generator seed")
	flag.Parse()
	base := strings.TrimRight(*addr, "/")

	reg := tvq.StandardRegistry()
	profile, _ := tvq.DatasetByName("M1") // pedestrian-heavy MOT16-06 shape
	profile.Frames = *frames
	profile.Objects = 120
	trace, err := tvq.GenerateDataset(profile, *seed, tvq.Noise{}, reg)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	results := make(map[string]tvqclient.IngestResult)
	for _, codec := range []tvq.Codec{tvq.BinaryCodec, tvq.JSONLCodec} {
		name := "smoke-" + codec.Name()
		c := tvqclient.New(base, tvqclient.WithRegistry(reg),
			tvqclient.WithCodec(codec), tvqclient.WithSession(name),
			tvqclient.WithStreamBuffer(8192))
		if _, err := c.CreateSession(ctx, name, tvqclient.SessionParams{
			Queries: []tvqclient.QueryParams{{ID: 1, Query: query, Window: 120, Duration: 30}},
		}); err != nil {
			log.Fatalf("create session %s: %v", name, err)
		}

		// Tap the live stream before ingesting so every match is seen.
		streamCtx, stopStream := context.WithCancel(ctx)
		streamed := make(chan int, 1)
		go func() {
			n := 0
			for _, err := range c.Stream(streamCtx, 1) {
				if err != nil {
					log.Fatalf("%s stream: %v", name, err)
				}
				n++
			}
			streamed <- n
		}()
		waitForMetric(base, fmt.Sprintf("tvq_streams_active %d", 1))

		res, err := c.IngestTrace(ctx, 0, trace)
		if err != nil {
			log.Fatalf("%s ingest: %v", name, err)
		}
		if res.Accepted != trace.Len() || res.NextFID != int64(trace.Len()) {
			log.Fatalf("%s ingest accounting: %+v, want %d frames", name, res, trace.Len())
		}
		if res.Matches == 0 {
			log.Fatalf("%s ingest produced no matches; smoke is vacuous", name)
		}
		if err := c.Unsubscribe(ctx, 1); err != nil {
			log.Fatalf("%s unsubscribe: %v", name, err)
		}
		select {
		case n := <-streamed:
			if n != res.Matches {
				log.Fatalf("%s stream delivered %d matches, ingest reported %d", name, n, res.Matches)
			}
		case <-time.After(10 * time.Second):
			log.Fatalf("%s stream did not end after unsubscribe", name)
		}
		stopStream()
		results[codec.Name()] = res
		fmt.Printf("%-6s ingest: %d frames, %d matches, cursor %d\n",
			codec.Name(), res.Accepted, res.Matches, res.NextFID)
	}

	if results["binary"] != results["jsonl"] {
		log.Fatalf("codec accounting diverges: %+v", results)
	}
	for _, codec := range []string{"binary", "jsonl"} {
		needle := fmt.Sprintf(`tvq_ingest_bytes_total{codec=%q}`, codec)
		if !strings.Contains(metrics(base), needle+" ") || strings.Contains(metrics(base), needle+" 0") {
			log.Fatalf("metrics missing nonzero %s", needle)
		}
	}
	fmt.Println("tvqsmoke: PASS")
}

func metrics(base string) string {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

// waitForMetric polls the daemon's metrics until the given sample line
// appears, failing the smoke after a bounded wait.
func waitForMetric(base, want string) {
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if strings.Contains(metrics(base), want) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "tvqsmoke: metric %q never appeared\n", want)
	os.Exit(1)
}
