// Command tvqd is the tvq serving daemon: a long-running process that
// exposes the Session API over HTTP — batched frame ingest per feed,
// dynamic query subscriptions, and live match streams over SSE or
// chunked JSONL — with Prometheus-style metrics, health checking, and
// graceful, checkpointed shutdown.
//
// Usage:
//
//	tvqd -addr :7800
//	tvqd -addr :7800 -q "car >= 1 AND person >= 2" -w 300 -d 240
//	tvqd -addr :7800 -checkpoint-dir /var/lib/tvqd -every 1000
//	tvqd -addr :7800 -workers 4 -shard feed        # multi-camera pool
//
// Each -q flag subscribes one query on the boot session (named by
// -session, default "default"); a query uses the shared -w/-d
// parameters unless it carries its own "@ window:duration" suffix, as
// in "person >= 2 @ 600:450". Further sessions and queries are managed
// over the API:
//
//	curl -X POST localhost:7800/v1/sessions -d '{"name":"cam-bank","workers":4,"shard":"feed"}'
//	curl -X POST localhost:7800/v1/queries -d '{"query":"car >= 1","window":300,"duration":240}'
//	curl -N localhost:7800/v1/queries/1/stream
//	curl -X POST localhost:7800/v1/feeds/0/frames --data-binary @frames.jsonl
//
// Ingest bodies are decoded per their Content-Type. The default (no
// type, or curl's form-encoded default) is JSON Lines in the trace
// codec's frame format — {"fid":0,"objects":[{"id":1,"class":"car"}]}
// — so `tvqgen` output and WriteTraceJSONL files POST directly. The
// binary wire format (Content-Type: application/x-tvq-frames, see the
// README's wire-protocol section and the tvqclient package) carries
// the same frames in a fraction of the bytes, and its decoded frames
// skip the engine's clone-on-retain. Any other Content-Type is
// answered 415. Frames of a feed must arrive in order; a gap or replay
// is answered 409 with the expected frame id in next_fid, and ingest
// bursts beyond -max-queue waiting batches are answered 429
// (backpressure, not loss). A session created with "disorder": k (or
// the boot -disorder flag) instead absorbs batches whose frames are
// displaced by up to k positions, reassembling them in order; frames
// beyond the bound hit the session's late policy (-late-policy drop or
// error) and are counted in the tvq_late_frames_total metric, with the
// current buffer occupancy in the tvq_reorder_depth gauge.
//
// With -checkpoint-dir every session snapshots to <dir>/<name>.tvqsnap
// on the -every cadence and once at shutdown; a restarted daemon
// resumes each session — cursor, query set, subscriptions — from its
// file, continuing exactly where it stopped. SIGINT/SIGTERM trigger the
// graceful path: streams end, in-flight batches finish, checkpoints are
// written, and the listener drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tvq"
	"tvq/internal/server"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		queries      queryFlags
		addr         = flag.String("addr", ":7800", "listen address")
		window       = flag.Int("w", 300, "default window size for -q queries, in frames")
		duration     = flag.Int("d", 240, "default duration threshold for -q queries, in frames")
		method       = flag.String("method", "ssg", "state maintenance: naive, mfs or ssg")
		workers      = flag.Int("workers", 1, "engine shards for the boot session; above 1 runs a pooled session")
		shard        = flag.String("shard", "feed", "pool sharding for the boot session: feed (multi-camera) or group (window groups)")
		windowMode   = flag.String("window-mode", "sliding", "window semantics: sliding or tumbling")
		disorder     = flag.Int("disorder", 0, "boot session: absorb ingest batches displaced up to this many frames (0 = strict order)")
		latePolicy   = flag.String("late-policy", "", "boot session: what happens to frames beyond the disorder bound: drop or error")
		session      = flag.String("session", "default", "name of the boot session (also the ?session= default)")
		ckDir        = flag.String("checkpoint-dir", "", "snapshot sessions to <dir>/<name>.tvqsnap and resume from them on restart")
		every        = flag.String("every", "1000", "checkpoint cadence: a frame count (\"500\") or a wall-clock duration (\"30s\")")
		maxQueue     = flag.Int("max-queue", 64, "ingest batches queued per session before 429")
		streamBuffer = flag.Int("stream-buffer", 256, "default per-stream delivery buffer (drop-oldest beyond it)")
		heartbeat    = flag.Duration("heartbeat", 15*time.Second, "SSE keep-alive interval (0 disables)")
		drain        = flag.Duration("drain", 10*time.Second, "how long shutdown waits for connections to drain")
	)
	flag.Var(&queries, "q", "query to subscribe on the boot session (repeatable); append \"@ w:d\" for a per-query window")
	flag.Parse()

	if err := run(cfg{
		addr: *addr, queries: queries, window: *window, duration: *duration,
		method: *method, workers: *workers, shard: *shard, windowMode: *windowMode,
		disorder: *disorder, latePolicy: *latePolicy,
		session: *session, ckDir: *ckDir, every: *every,
		maxQueue: *maxQueue, streamBuffer: *streamBuffer,
		heartbeat: *heartbeat, drain: *drain,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tvqd:", err)
		os.Exit(1)
	}
}

type cfg struct {
	addr                      string
	queries                   []string
	window, duration          int
	method, shard, windowMode string
	workers                   int
	disorder                  int
	latePolicy                string
	session, ckDir, every     string
	maxQueue, streamBuffer    int
	heartbeat, drain          time.Duration
}

func run(c cfg) error {
	scfg := server.Config{
		Registry:         tvq.StandardRegistry(),
		DefaultSession:   c.session,
		MaxQueuedBatches: c.maxQueue,
		StreamBuffer:     c.streamBuffer,
		Heartbeat:        c.heartbeat,
	}
	if c.ckDir != "" {
		cadence, err := tvq.ParseCadence(c.every)
		if err != nil {
			return err
		}
		scfg.CheckpointDir, scfg.CheckpointEvery = c.ckDir, cadence
	}
	srv := server.New(scfg)

	params := server.SessionParams{Method: c.method, WindowMode: c.windowMode}
	if c.workers > 1 {
		params.Workers, params.Shard = c.workers, c.shard
	}
	params.Disorder, params.LatePolicy = c.disorder, c.latePolicy
	var err error
	params.Queries, err = parseQueries(c.queries, c.window, c.duration)
	if err != nil {
		return err
	}
	resumed, err := srv.EnsureSession(c.session, params)
	if err != nil {
		return fmt.Errorf("boot session %q: %w", c.session, err)
	}
	if resumed {
		sess, _ := srv.Manager().Get(c.session)
		log.Printf("session %q resumed from checkpoint at frame %d (%d queries)",
			c.session, sess.NextFID(0), len(sess.Queries()))
	} else if n := len(params.Queries); n > 0 {
		log.Printf("session %q opened with %d boot queries", c.session, n)
	}

	httpSrv := &http.Server{Addr: c.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("tvqd serving on %s", c.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Shutdown()
		return err
	case sig := <-sigc:
		log.Printf("received %v; draining", sig)
	}

	// Graceful path: end streams and close every session first (each
	// in-flight batch completes and final checkpoints are written), then
	// drain the listener.
	if err := srv.Shutdown(); err != nil {
		log.Printf("session shutdown: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("listener drain: %w", err)
	}
	log.Printf("tvqd stopped cleanly")
	return nil
}

// parseQueries turns the -q flags into query parameters; "text @ w:d"
// overrides the shared -w/-d for one query.
func parseQueries(specs []string, window, duration int) ([]server.QueryParams, error) {
	var out []server.QueryParams
	for _, spec := range specs {
		text, w, d := spec, window, duration
		if at := strings.LastIndex(spec, "@"); at >= 0 {
			wd := strings.TrimSpace(spec[at+1:])
			colon := strings.Index(wd, ":")
			if colon < 0 {
				return nil, fmt.Errorf("query %q: per-query window must be \"@ w:d\"", spec)
			}
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(wd[:colon])); err != nil {
				return nil, fmt.Errorf("query %q: bad window: %v", spec, err)
			}
			if d, err = strconv.Atoi(strings.TrimSpace(wd[colon+1:])); err != nil {
				return nil, fmt.Errorf("query %q: bad duration: %v", spec, err)
			}
			text = strings.TrimSpace(spec[:at])
		}
		// Validate eagerly so a typo fails at boot, not at first frame.
		if _, err := tvq.ParseQuery(0, text, w, d); err != nil {
			return nil, err
		}
		out = append(out, server.QueryParams{Query: text, Window: w, Duration: d})
	}
	return out, nil
}
