// Command tvqbench regenerates the tables and figures of the paper's
// experimental evaluation (§6) on synthetic datasets matching Table 6.
//
// Usage:
//
//	tvqbench -exp table6
//	tvqbench -exp fig4                 # all six datasets, full scale
//	tvqbench -exp fig9 -datasets D1,M1 # subset of panels
//	tvqbench -exp all -scale 4         # quick pass at quarter scale
//	tvqbench -exp parallel -workers 8  # multi-feed pool scaling
//	tvqbench -json . -scale 4          # write BENCH_<dataset>.json files
//
// Experiments: table6, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
// parallel, all. Output is aligned text: one table per subfigure, one
// row per x value, one column per method, times in seconds. The
// parallel experiment compares the serial single-engine baseline with
// the multi-feed Pool at worker counts 1, 2, 4, ... up to -workers.
//
// With -json DIR the text experiments are replaced (combining -json
// with -exp, -workers or -feeds is an error): each selected dataset is
// measured once per method on the standard multi-query workload, plus
// once per wire codec through the tvqd ingest path (method "INGEST":
// HTTP dispatch + frame decode + engine retain, with wire bytes per
// frame), and the results are written to DIR/BENCH_<dataset>.json as
// machine-readable records (method, window, frames/sec, allocations
// and bytes per frame), so the performance trajectory can be tracked
// across commits; EXPERIMENTS.md summarizes the committed records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tvq/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table6, fig4..fig10, parallel, or all")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: the paper's choice per figure)")
		seed     = flag.Int64("seed", 1, "dataset generation seed")
		scale    = flag.Int("scale", 1, "divide frame counts, window and duration by this factor for quick runs")
		workers  = flag.Int("workers", 4, "maximum pool worker count for the parallel experiment")
		feeds    = flag.Int("feeds", 4, "number of synthetic feeds for the parallel experiment")
		jsonDir  = flag.String("json", "", "write machine-readable BENCH_<dataset>.json files to this directory instead of running text experiments")
	)
	flag.Parse()

	cfg := bench.Config{Seed: *seed, Scale: *scale}
	var subset []string
	if *datasets != "" {
		subset = strings.Split(*datasets, ",")
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var err error
	if *jsonDir != "" {
		// The JSON pass replaces the text experiments; reject flags that
		// would otherwise be silently ignored.
		if explicit["exp"] || explicit["workers"] || explicit["feeds"] {
			err = fmt.Errorf("-json replaces the text experiments; it cannot be combined with -exp, -workers or -feeds")
		} else {
			err = runJSON(cfg, *jsonDir, subset)
		}
	} else {
		err = run(cfg, *exp, subset, *workers, *feeds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvqbench:", err)
		os.Exit(1)
	}
}

// runJSON is the perf-tracking pass: one BENCH_<dataset>.json per
// dataset, 30 mixed queries per run.
func runJSON(cfg bench.Config, dir string, subset []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := subset
	if names == nil {
		names = bench.DatasetNames()
	}
	for _, name := range names {
		entries, err := cfg.MeasurePerf(name, 30)
		if err != nil {
			return err
		}
		scaling, err := cfg.MeasureScaling(name)
		if err != nil {
			return err
		}
		entries = append(entries, scaling...)
		ingest, err := cfg.MeasureIngest(name)
		if err != nil {
			return err
		}
		entries = append(entries, ingest...)
		path, err := bench.WritePerfJSON(dir, name, entries)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func run(cfg bench.Config, exp string, subset []string, workers, feeds int) error {
	all := subset
	if all == nil {
		all = bench.DatasetNames()
	}
	figs := map[string]func() (bench.Figure, error){
		"fig4":  func() (bench.Figure, error) { return cfg.Figure4(all) },
		"fig5":  func() (bench.Figure, error) { return cfg.Figure5(all) },
		"fig6":  func() (bench.Figure, error) { return cfg.Figure6(all) },
		"fig7":  func() (bench.Figure, error) { return cfg.Figure7(all) },
		"fig8":  func() (bench.Figure, error) { return cfg.Figure8(orDefault(subset, []string{"V1", "M2"})) },
		"fig9":  func() (bench.Figure, error) { return cfg.Figure9(orDefault(subset, []string{"D1", "D2", "M1", "M2"})) },
		"fig10": func() (bench.Figure, error) { return cfg.Figure10() },
	}

	order := []string{"table6", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "parallel"}
	selected := []string{exp}
	if exp == "all" {
		selected = order
	}

	for _, name := range selected {
		switch {
		case name == "parallel":
			for _, ds := range orDefault(subset, []string{"M2"}) {
				rep, err := cfg.ParallelScaling(ds, feeds, 30, workers)
				if err != nil {
					return err
				}
				if err := rep.Render(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			}
		case name == "table6":
			rows, err := cfg.Table6()
			if err != nil {
				return err
			}
			bench.RenderTable6(os.Stdout, rows)
			fmt.Println()
		case figs[name] != nil:
			fig, err := figs[name]()
			if err != nil {
				return err
			}
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	return nil
}

func orDefault(subset, def []string) []string {
	if subset != nil {
		return subset
	}
	return def
}
