// Command tvqbench regenerates the tables and figures of the paper's
// experimental evaluation (§6) on synthetic datasets matching Table 6.
//
// Usage:
//
//	tvqbench -exp table6
//	tvqbench -exp fig4                 # all six datasets, full scale
//	tvqbench -exp fig9 -datasets D1,M1 # subset of panels
//	tvqbench -exp all -scale 4         # quick pass at quarter scale
//
// Experiments: table6, fig4, fig5, fig6, fig7, fig8, fig9, fig10, all.
// Output is aligned text: one table per subfigure, one row per x value,
// one column per method, times in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tvq/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table6, fig4..fig10, or all")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: the paper's choice per figure)")
		seed     = flag.Int64("seed", 1, "dataset generation seed")
		scale    = flag.Int("scale", 1, "divide frame counts, window and duration by this factor for quick runs")
	)
	flag.Parse()

	cfg := bench.Config{Seed: *seed, Scale: *scale}
	var subset []string
	if *datasets != "" {
		subset = strings.Split(*datasets, ",")
	}
	if err := run(cfg, *exp, subset); err != nil {
		fmt.Fprintln(os.Stderr, "tvqbench:", err)
		os.Exit(1)
	}
}

func run(cfg bench.Config, exp string, subset []string) error {
	all := subset
	if all == nil {
		all = bench.DatasetNames()
	}
	figs := map[string]func() (bench.Figure, error){
		"fig4":  func() (bench.Figure, error) { return cfg.Figure4(all) },
		"fig5":  func() (bench.Figure, error) { return cfg.Figure5(all) },
		"fig6":  func() (bench.Figure, error) { return cfg.Figure6(all) },
		"fig7":  func() (bench.Figure, error) { return cfg.Figure7(all) },
		"fig8":  func() (bench.Figure, error) { return cfg.Figure8(orDefault(subset, []string{"V1", "M2"})) },
		"fig9":  func() (bench.Figure, error) { return cfg.Figure9(orDefault(subset, []string{"D1", "D2", "M1", "M2"})) },
		"fig10": func() (bench.Figure, error) { return cfg.Figure10() },
	}

	order := []string{"table6", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	selected := []string{exp}
	if exp == "all" {
		selected = order
	}

	for _, name := range selected {
		switch {
		case name == "table6":
			rows, err := cfg.Table6()
			if err != nil {
				return err
			}
			bench.RenderTable6(os.Stdout, rows)
			fmt.Println()
		case figs[name] != nil:
			fig, err := figs[name]()
			if err != nil {
				return err
			}
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	return nil
}

func orDefault(subset, def []string) []string {
	if subset != nil {
		return subset
	}
	return def
}
