// Command tvqgen generates synthetic object-stream traces with the
// statistical shape of the paper's evaluation datasets and writes them as
// CSV or JSON Lines.
//
// Usage:
//
//	tvqgen -dataset D2 -seed 7 -o d2.csv
//	tvqgen -dataset M1 -po 2 -miss 0.05 -format jsonl -o m1.jsonl
//	tvqgen -dataset M1 -format binary -o m1.tvqf   # binary wire format
//	tvqgen -frames 2000 -objects 150 -fpo 60 -opo 4 -o custom.csv
//	tvqgen -dataset V1 -stats            # print Table 6 statistics only
//	tvqgen -dataset V1 -disorder 4 -format jsonl -o v1-shuffled.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"tvq"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "standard dataset profile (V1, V2, D1, D2, M1, M2); empty = custom profile from -frames/-objects/-fpo/-opo")
		frames   = flag.Int("frames", 1000, "custom profile: total frames")
		objects  = flag.Int("objects", 100, "custom profile: unique objects")
		fpo      = flag.Float64("fpo", 50, "custom profile: mean frames per object")
		opo      = flag.Float64("opo", 3, "custom profile: mean occlusions per object")
		moving   = flag.Bool("moving", false, "custom profile: moving-camera arrival bursts")
		seed     = flag.Int64("seed", 1, "generation seed")
		po       = flag.Int("po", 0, "occlusion parameter: reuse each object id up to po times")
		miss     = flag.Float64("miss", 0, "tracker noise: per-object-frame detection miss probability")
		swtch    = flag.Float64("switch", 0, "tracker noise: per-object-frame identity switch probability")
		fp       = flag.Float64("fp", 0, "tracker noise: expected false positives per frame")
		format   = flag.String("format", "csv", "output format: csv, jsonl or binary")
		out      = flag.String("o", "-", "output path; - for stdout")
		stats    = flag.Bool("stats", false, "print dataset statistics instead of the trace")
		disorder = flag.Int("disorder", 0, "emit frames in a bounded-shuffle order: no frame displaced more than this many positions (jsonl/binary only)")
	)
	flag.Parse()

	if err := run(*dataset, *frames, *objects, *fpo, *opo, *moving, *seed, *po,
		*miss, *swtch, *fp, *format, *out, *stats, *disorder); err != nil {
		fmt.Fprintln(os.Stderr, "tvqgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, frames, objects int, fpo, opo float64, moving bool,
	seed int64, po int, miss, swtch, fp float64, format, out string, stats bool, disorder int) error {

	if disorder < 0 {
		return fmt.Errorf("-disorder %d: bound must be non-negative", disorder)
	}
	if disorder > 0 && format == "csv" {
		return fmt.Errorf("-disorder needs a frame-stream format (jsonl or binary); csv is row-per-tuple and has no frame order to shuffle")
	}

	var profile tvq.Profile
	if dataset != "" {
		p, ok := tvq.DatasetByName(dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q (want V1, V2, D1, D2, M1 or M2)", dataset)
		}
		profile = p
	} else {
		profile = tvq.Profile{
			Name: "custom", Frames: frames, Objects: objects,
			FramesPerObj: fpo, OccPerObj: opo, MovingCamera: moving,
			ClassMix: map[string]float64{"car": 0.5, "person": 0.3, "truck": 0.12, "bus": 0.08},
		}
	}

	reg := tvq.StandardRegistry()
	trace, err := tvq.GenerateDataset(profile, seed, tvq.Noise{
		MissProb:          miss,
		SwitchProb:        swtch,
		FalsePositiveRate: fp,
		Seed:              seed,
	}, reg)
	if err != nil {
		return err
	}
	if po > 0 {
		trace = tvq.InjectOcclusions(trace, po, seed)
	}

	if stats {
		st := tvq.ComputeStats(trace)
		fmt.Printf("dataset=%s frames=%d objects=%d obj/frame=%.2f occ/obj=%.2f frames/obj=%.2f\n",
			profile.Name, st.Frames, st.Objects, st.ObjPerFrame, st.OccPerObj, st.FramesPerObj)
		return nil
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "csv" {
		return tvq.WriteTraceCSV(w, trace, reg)
	}
	codec, ok := tvq.CodecByName(format)
	if !ok {
		return fmt.Errorf("unknown format %q (want csv, jsonl or binary)", format)
	}
	if disorder == 0 {
		return codec.WriteTrace(w, trace, reg)
	}
	// Bounded-shuffle emission: the frame stream arrives displaced by at
	// most -disorder positions — the arrival pattern a session opened
	// with WithDisorderBound(disorder) reassembles exactly. The shuffle
	// reuses the generation seed, so a trace and its disordered emission
	// are reproducible together. Disordered streams are for the
	// streaming consumers (ingest, cmd/tvq -stream); the whole-trace
	// readers reject them by design.
	fw := codec.NewFrameWriter(w, reg)
	for _, f := range tvq.BoundedShuffle(trace.Frames(), disorder, seed) {
		if err := fw.WriteFrame(f); err != nil {
			return err
		}
	}
	return fw.Flush()
}
