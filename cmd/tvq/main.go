// Command tvq runs temporal co-occurrence queries over an object-stream
// trace and prints every match.
//
// Usage:
//
//	tvq -q "car >= 1 AND person >= 2" -w 300 -d 240 trace.csv
//	tvq -q "car >= 2" -q "bus >= 1" -w 150 -d 100 -method mfs trace.jsonl
//	tvqgen -dataset M2 | tvq -q "person >= 3" -w 300 -d 240 -
//
// Each -q flag adds one query; all queries share the -w/-d parameters
// (use the library directly for mixed windows). The trace format is
// inferred from the file extension; stdin defaults to CSV unless
// -format jsonl is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tvq"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		queries  queryFlags
		window   = flag.Int("w", 300, "window size in frames")
		duration = flag.Int("d", 240, "duration threshold in frames")
		method   = flag.String("method", "ssg", "state maintenance: naive, mfs or ssg")
		prune    = flag.Bool("prune", false, "enable result-driven pruning (>=-only query sets)")
		format   = flag.String("format", "", "trace format: csv or jsonl (default: from extension)")
		quiet    = flag.Bool("quiet", false, "print only the match count")
	)
	flag.Var(&queries, "q", "query text (repeatable), e.g. \"car >= 1 AND person >= 2\"")
	flag.Parse()

	if err := run(queries, *window, *duration, *method, *prune, *format, *quiet, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tvq:", err)
		os.Exit(1)
	}
}

func run(texts []string, window, duration int, method string, prune bool, format string, quiet bool, path string) error {
	if len(texts) == 0 {
		return fmt.Errorf("no queries; pass at least one -q")
	}
	if path == "" {
		return fmt.Errorf("no trace path; pass a file or - for stdin")
	}

	var qs []tvq.Query
	for i, text := range texts {
		q, err := tvq.ParseQuery(i+1, text, window, duration)
		if err != nil {
			return err
		}
		qs = append(qs, q)
	}

	var in io.Reader
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		if format == "" {
			if strings.HasSuffix(path, ".jsonl") {
				format = "jsonl"
			} else {
				format = "csv"
			}
		}
	}
	if format == "" {
		format = "csv"
	}

	reg := tvq.StandardRegistry()
	var trace *tvq.Trace
	var err error
	switch format {
	case "csv":
		trace, err = tvq.ReadTraceCSV(in, reg)
	case "jsonl":
		trace, err = tvq.ReadTraceJSONL(in, reg)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}

	eng, err := tvq.NewEngine(qs, tvq.Options{
		Method:   tvq.Method(method),
		Prune:    prune,
		Registry: reg,
	})
	if err != nil {
		return err
	}

	total := 0
	for _, f := range trace.Frames() {
		for _, m := range eng.ProcessFrame(f) {
			total++
			if !quiet {
				fmt.Printf("frame %d: %s\n", f.FID, tvq.FormatMatch(m))
			}
		}
	}
	fmt.Printf("%d matches over %d frames (%d queries, w=%d, d=%d, method=%s)\n",
		total, trace.Len(), len(qs), window, duration, method)
	return nil
}
