// Command tvq runs temporal co-occurrence queries over an object-stream
// trace and prints every match.
//
// Usage:
//
//	tvq -q "car >= 1 AND person >= 2" -w 300 -d 240 trace.csv
//	tvq -q "car >= 2" -q "bus >= 1" -w 150 -d 100 -method mfs trace.jsonl
//	tvqgen -dataset M2 | tvq -q "person >= 3" -w 300 -d 240 -
//	tvq -q "person >= 2 @ 600:450" -q "car >= 1" -w 300 -d 240 -workers 2 trace.csv
//
// Each -q flag adds one query. A query uses the shared -w/-d parameters
// unless it carries its own "@ window:duration" suffix, as in
// "person >= 2 @ 600:450". The trace format is inferred from the file
// extension; stdin defaults to CSV unless -format jsonl is given.
//
// With -workers above 1 the trace is evaluated by a parallel pool that
// partitions the queries' window groups across engines; matches and
// their order are identical to the single-engine run. Parallelism is
// bounded by the number of distinct window sizes, so give queries
// different @-windows to use more than one worker; the pool warns when
// it clamps.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tvq"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		queries  queryFlags
		window   = flag.Int("w", 300, "window size in frames")
		duration = flag.Int("d", 240, "duration threshold in frames")
		method   = flag.String("method", "ssg", "state maintenance: naive, mfs or ssg")
		prune    = flag.Bool("prune", false, "enable result-driven pruning (>=-only query sets)")
		format   = flag.String("format", "", "trace format: csv or jsonl (default: from extension)")
		quiet    = flag.Bool("quiet", false, "print only the match count")
		workers  = flag.Int("workers", 1, "engine shards; above 1 runs a parallel pool over the window groups")
	)
	flag.Var(&queries, "q", "query text (repeatable), e.g. \"car >= 1 AND person >= 2\"; append \"@ w:d\" for a per-query window")
	flag.Parse()

	if err := run(queries, *window, *duration, *method, *prune, *format, *quiet, *workers, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tvq:", err)
		os.Exit(1)
	}
}

func run(texts []string, window, duration int, method string, prune bool, format string, quiet bool, workers int, path string) error {
	if len(texts) == 0 {
		return fmt.Errorf("no queries; pass at least one -q")
	}
	if path == "" {
		return fmt.Errorf("no trace path; pass a file or - for stdin")
	}

	var qs []tvq.Query
	for i, text := range texts {
		text, w, d, err := splitWindowSuffix(text, window, duration)
		if err != nil {
			return err
		}
		q, err := tvq.ParseQuery(i+1, text, w, d)
		if err != nil {
			return err
		}
		qs = append(qs, q)
	}

	var in io.Reader
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		if format == "" {
			if strings.HasSuffix(path, ".jsonl") {
				format = "jsonl"
			} else {
				format = "csv"
			}
		}
	}
	if format == "" {
		format = "csv"
	}

	reg := tvq.StandardRegistry()
	var trace *tvq.Trace
	var err error
	switch format {
	case "csv":
		trace, err = tvq.ReadTraceCSV(in, reg)
	case "jsonl":
		trace, err = tvq.ReadTraceJSONL(in, reg)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}

	opts := tvq.Options{
		Method:   tvq.Method(method),
		Prune:    prune,
		Registry: reg,
	}

	total := 0
	report := func(fid int64, ms []tvq.Match) {
		for _, m := range ms {
			total++
			if !quiet {
				fmt.Printf("frame %d: %s\n", fid, tvq.FormatMatch(m))
			}
		}
	}

	if workers > 1 {
		pool, err := tvq.NewPool(qs, tvq.PoolOptions{
			Workers: workers,
			Mode:    tvq.ShardByGroup,
			Engine:  opts,
		})
		if err != nil {
			return err
		}
		defer pool.Close()
		if pool.Workers() < workers {
			fmt.Fprintf(os.Stderr,
				"tvq: note: %d workers requested but only %d usable; parallelism is bounded by distinct window sizes — give queries different \"@ w:d\" windows to shard wider\n",
				workers, pool.Workers())
		}
		in := make(chan tvq.FeedFrame, 64)
		go func() {
			defer close(in)
			for _, f := range trace.Frames() {
				in <- tvq.FeedFrame{Frame: f}
			}
		}()
		for r := range pool.Stream(context.Background(), in) {
			report(r.FID, r.Matches)
		}
	} else {
		eng, err := tvq.NewEngine(qs, opts)
		if err != nil {
			return err
		}
		for _, f := range trace.Frames() {
			report(f.FID, eng.ProcessFrame(f))
		}
	}
	shared := true
	for _, q := range qs {
		if q.Window != window || q.Duration != duration {
			shared = false
			break
		}
	}
	params := fmt.Sprintf("w=%d, d=%d", window, duration)
	if !shared {
		params = "per-query windows"
	}
	fmt.Printf("%d matches over %d frames (%d queries, %s, method=%s)\n",
		total, trace.Len(), len(qs), params, method)
	return nil
}

// splitWindowSuffix strips an optional "@ w:d" suffix from a -q
// argument, returning the bare query text and its effective window and
// duration (the shared defaults when no suffix is present).
func splitWindowSuffix(text string, defWindow, defDuration int) (string, int, int, error) {
	at := strings.LastIndex(text, "@")
	if at < 0 {
		return text, defWindow, defDuration, nil
	}
	suffix := strings.TrimSpace(text[at+1:])
	ws, ds, ok := strings.Cut(suffix, ":")
	var w, d int
	var werr, derr error
	if ok {
		w, werr = strconv.Atoi(strings.TrimSpace(ws))
		d, derr = strconv.Atoi(strings.TrimSpace(ds))
	}
	if !ok || werr != nil || derr != nil {
		return "", 0, 0, fmt.Errorf("bad window suffix %q (want \"@ window:duration\", e.g. \"@ 600:450\")", suffix)
	}
	return strings.TrimSpace(text[:at]), w, d, nil
}
