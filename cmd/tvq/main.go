// Command tvq runs temporal co-occurrence queries over an object-stream
// trace and prints every match.
//
// Usage:
//
//	tvq -q "car >= 1 AND person >= 2" -w 300 -d 240 trace.csv
//	tvq -q "car >= 2" -q "bus >= 1" -w 150 -d 100 -method mfs trace.jsonl
//	tvqgen -dataset M2 | tvq -q "person >= 3" -w 300 -d 240 -
//	tvq -q "person >= 2 @ 600:450" -q "car >= 1" -w 300 -d 240 -workers 2 trace.csv
//	tvq -q "car >= 1" -checkpoint run.tvqsnap -every 500 trace.csv
//	tvq -resume run.tvqsnap trace.csv
//	tvqgen -format binary | tvq -q "person >= 2" -w 300 -d 240 -stream -format binary -
//
// Each -q flag adds one query. A query uses the shared -w/-d parameters
// unless it carries its own "@ window:duration" suffix, as in
// "person >= 2 @ 600:450". The trace format is inferred from the file
// extension (.csv, .jsonl, .tvqf for the binary wire format); stdin
// defaults to CSV unless -format csv|jsonl|binary is given.
//
// By default the whole trace is loaded before processing. With -stream
// the trace is decoded frame by frame through the codec's streaming
// reader and fed straight into the session, so arbitrarily long JSONL
// or binary inputs — including live pipes — process in constant
// memory. (CSV is not streamable: its rows are not frame-ordered.)
// Binary input additionally takes the engine's ownership-transfer fast
// path: decoded frames arrive owned and are retained without a clone.
//
// The command is a thin shell over the v2 Session API: it opens one
// tvq.Session with functional options and streams the trace through it.
// With -workers above 1 the session is pooled, partitioning the
// queries' window groups across engines; matches and their order are
// identical to the single-engine run. Parallelism is bounded by the
// number of distinct window sizes, so give queries different @-windows
// to use more than one worker; the command warns when the session
// clamps.
//
// With -checkpoint the session state is snapshotted to the given path
// every -every frames ("500") or every -every of wall clock ("30s"),
// atomically (written to a temp file and renamed), plus once on exit. A
// killed run is picked up with -resume: the session is restored from
// the snapshot — single-engine or pooled, the file records which —
// already-processed frames of the trace are skipped, and the
// continuation emits exactly the matches the uninterrupted run would
// have emitted. When resuming, queries and engine options are taken
// from the snapshot; -q/-w/-d are ignored, and an explicit -method or
// -workers that disagrees with the snapshot is an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"iter"
	"os"
	"slices"
	"strconv"
	"strings"

	"tvq"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

type config struct {
	queries    []string
	window     int
	duration   int
	method     string
	methodSet  bool
	prune      bool
	format     string
	stream     bool
	quiet      bool
	workers    int
	workersSet bool
	checkpoint string
	every      string
	resume     string
	path       string
}

func main() {
	var (
		queries    queryFlags
		window     = flag.Int("w", 300, "window size in frames")
		duration   = flag.Int("d", 240, "duration threshold in frames")
		method     = flag.String("method", "ssg", "state maintenance: naive, mfs or ssg")
		prune      = flag.Bool("prune", false, "enable result-driven pruning (>=-only query sets)")
		format     = flag.String("format", "", "trace format: csv, jsonl or binary (default: from extension)")
		stream     = flag.Bool("stream", false, "decode the trace frame by frame (jsonl or binary) instead of loading it into memory")
		quiet      = flag.Bool("quiet", false, "print only the match count")
		workers    = flag.Int("workers", 1, "engine shards; above 1 runs a pooled session over the window groups")
		checkpoint = flag.String("checkpoint", "", "snapshot session state to this path periodically (see -every)")
		every      = flag.String("every", "1000", "checkpoint cadence: a frame count (\"500\") or a wall-clock duration (\"30s\")")
		resume     = flag.String("resume", "", "restore session state from this snapshot and continue the trace")
	)
	flag.Var(&queries, "q", "query text (repeatable), e.g. \"car >= 1 AND person >= 2\"; append \"@ w:d\" for a per-query window")
	flag.Parse()

	cfg := config{
		queries:    queries,
		window:     *window,
		duration:   *duration,
		method:     *method,
		prune:      *prune,
		format:     *format,
		stream:     *stream,
		quiet:      *quiet,
		workers:    *workers,
		checkpoint: *checkpoint,
		every:      *every,
		resume:     *resume,
		path:       flag.Arg(0),
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "method":
			cfg.methodSet = true
		case "workers":
			cfg.workersSet = true
		}
	})

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tvq:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if len(cfg.queries) == 0 && cfg.resume == "" {
		return fmt.Errorf("no queries; pass at least one -q (or -resume a snapshot)")
	}
	if cfg.path == "" {
		return fmt.Errorf("no trace path; pass a file or - for stdin")
	}

	sess, err := openSession(cfg)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			sess.Close()
		}
	}()

	start := sess.NextFID(0)
	if start > 0 {
		fmt.Fprintf(os.Stderr, "tvq: resumed at frame %d (%d frames already processed)\n", start, start)
	}

	// Assemble the frame source: streamed through the codec's per-frame
	// reader with -stream, or a materialized trace otherwise. frames
	// counts what the session actually processes; srcErr captures a
	// mid-stream decode failure.
	var (
		src    iter.Seq[tvq.Frame]
		frames int
		srcErr error
	)
	if cfg.stream {
		codec, ok := tvq.CodecByName(traceFormat(cfg))
		if !ok {
			return fmt.Errorf("-stream needs a jsonl or binary trace, not %q", traceFormat(cfg))
		}
		in, closeIn, err := openInput(cfg)
		if err != nil {
			return err
		}
		defer closeIn()
		decoded := tvq.DecodeFrames(in, codec, tvq.StandardRegistry())
		src = func(yield func(tvq.Frame) bool) {
			for f, err := range decoded {
				if err != nil {
					srcErr = err
					return
				}
				if f.FID < start { // already processed before the resume
					continue
				}
				frames++
				if !yield(f) {
					return
				}
			}
		}
	} else {
		trace, err := readTrace(cfg)
		if err != nil {
			return err
		}
		if start > int64(trace.Len()) {
			return fmt.Errorf("snapshot has processed %d frames but the trace has only %d", start, trace.Len())
		}
		frames = trace.Len() - int(start)
		src = slices.Values(trace.Frames()[start:])
	}

	ctx := context.Background()
	total := 0
	for f, ms := range sess.Stream(ctx, src) {
		for _, m := range ms {
			total++
			if !cfg.quiet {
				fmt.Printf("frame %d: %s\n", f.FID, tvq.FormatMatch(m))
			}
		}
	}
	if srcErr != nil {
		return srcErr
	}
	if err := sess.Err(); err != nil {
		return err
	}

	nqueries, method := len(sess.Queries()), sess.Method()
	closed = true
	if err := sess.Close(); err != nil { // writes the final checkpoint
		return err
	}
	fmt.Printf("%d matches over %d frames (%d queries, method=%s)\n",
		total, frames, nqueries, method)
	return nil
}

// openSession assembles the session options from the flags: a fresh
// Open for a normal run, a Resume when -resume points at a snapshot.
func openSession(cfg config) (*tvq.Session, error) {
	ctx := context.Background()
	opts := []tvq.Option{tvq.WithRegistry(tvq.StandardRegistry())}
	if cfg.checkpoint != "" {
		cadence, err := tvq.ParseCadence(cfg.every)
		if err != nil {
			return nil, err
		}
		opts = append(opts, tvq.WithCheckpoint(cfg.checkpoint, cadence))
	}

	if cfg.resume != "" {
		// Recorded state wins; explicit flags become cross-checks.
		if cfg.methodSet {
			opts = append(opts, tvq.WithMethod(tvq.Method(cfg.method)))
		}
		if cfg.workersSet {
			opts = append(opts, tvq.WithWorkers(cfg.workers))
		}
		f, err := os.Open(cfg.resume)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tvq.Resume(ctx, f, opts...)
	}

	qs, err := parseQueries(cfg)
	if err != nil {
		return nil, err
	}
	opts = append(opts,
		tvq.WithQueries(qs...),
		tvq.WithMethod(tvq.Method(cfg.method)),
		tvq.WithPruning(cfg.prune),
	)
	if cfg.workers > 1 {
		opts = append(opts, tvq.WithWorkers(cfg.workers), tvq.WithShardMode(tvq.ShardByGroup))
	}
	sess, err := tvq.Open(ctx, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.workers > 1 && sess.Workers() < cfg.workers {
		fmt.Fprintf(os.Stderr,
			"tvq: note: %d workers requested but only %d usable; parallelism is bounded by distinct window sizes — give queries different \"@ w:d\" windows to shard wider\n",
			cfg.workers, sess.Workers())
	}
	return sess, nil
}

func parseQueries(cfg config) ([]tvq.Query, error) {
	var qs []tvq.Query
	for i, text := range cfg.queries {
		text, w, d, err := splitWindowSuffix(text, cfg.window, cfg.duration)
		if err != nil {
			return nil, err
		}
		q, err := tvq.ParseQuery(i+1, text, w, d)
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// traceFormat resolves the effective trace format: an explicit -format
// wins, then the file extension, then CSV.
func traceFormat(cfg config) string {
	if cfg.format != "" {
		return cfg.format
	}
	switch {
	case strings.HasSuffix(cfg.path, ".jsonl"):
		return "jsonl"
	case strings.HasSuffix(cfg.path, ".tvqf"):
		return "binary"
	default:
		return "csv"
	}
}

// openInput opens the trace path (or stdin for "-") for reading.
func openInput(cfg config) (io.Reader, func() error, error) {
	if cfg.path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(cfg.path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func readTrace(cfg config) (*tvq.Trace, error) {
	in, closeIn, err := openInput(cfg)
	if err != nil {
		return nil, err
	}
	defer closeIn()
	reg := tvq.StandardRegistry()
	format := traceFormat(cfg)
	if format == "csv" {
		return tvq.ReadTraceCSV(in, reg)
	}
	codec, ok := tvq.CodecByName(format)
	if !ok {
		return nil, fmt.Errorf("unknown format %q (want csv, jsonl or binary)", format)
	}
	return codec.ReadTrace(in, reg)
}

// splitWindowSuffix strips an optional "@ w:d" suffix from a -q
// argument, returning the bare query text and its effective window and
// duration (the shared defaults when no suffix is present).
func splitWindowSuffix(text string, defWindow, defDuration int) (string, int, int, error) {
	at := strings.LastIndex(text, "@")
	if at < 0 {
		return text, defWindow, defDuration, nil
	}
	suffix := strings.TrimSpace(text[at+1:])
	ws, ds, ok := strings.Cut(suffix, ":")
	var w, d int
	var werr, derr error
	if ok {
		w, werr = strconv.Atoi(strings.TrimSpace(ws))
		d, derr = strconv.Atoi(strings.TrimSpace(ds))
	}
	if !ok || werr != nil || derr != nil {
		return "", 0, 0, fmt.Errorf("bad window suffix %q (want \"@ window:duration\", e.g. \"@ 600:450\")", suffix)
	}
	return strings.TrimSpace(text[:at]), w, d, nil
}
