// Command tvq runs temporal co-occurrence queries over an object-stream
// trace and prints every match.
//
// Usage:
//
//	tvq -q "car >= 1 AND person >= 2" -w 300 -d 240 trace.csv
//	tvq -q "car >= 2" -q "bus >= 1" -w 150 -d 100 -method mfs trace.jsonl
//	tvqgen -dataset M2 | tvq -q "person >= 3" -w 300 -d 240 -
//	tvq -q "person >= 2 @ 600:450" -q "car >= 1" -w 300 -d 240 -workers 2 trace.csv
//	tvq -q "car >= 1" -checkpoint run.tvqsnap -every 500 trace.csv
//	tvq -resume run.tvqsnap trace.csv
//
// Each -q flag adds one query. A query uses the shared -w/-d parameters
// unless it carries its own "@ window:duration" suffix, as in
// "person >= 2 @ 600:450". The trace format is inferred from the file
// extension; stdin defaults to CSV unless -format jsonl is given.
//
// With -workers above 1 the trace is evaluated by a parallel pool that
// partitions the queries' window groups across engines; matches and
// their order are identical to the single-engine run. Parallelism is
// bounded by the number of distinct window sizes, so give queries
// different @-windows to use more than one worker; the pool warns when
// it clamps.
//
// With -checkpoint the engine state is snapshotted to the given path
// every -every frames ("500") or every -every of wall clock ("30s"),
// atomically (written to a temp file and renamed). A killed run is
// picked up with -resume: the engine (or pool) is restored from the
// snapshot, already-processed frames of the trace are skipped, and the
// continuation emits exactly the matches the uninterrupted run would
// have emitted. The snapshot records whether it holds an engine or a
// pool run, so plain "-resume file trace" works for both. When
// resuming, queries and engine options are taken from the snapshot;
// -q/-w/-d are ignored, and an explicit -method or -workers that
// disagrees with the snapshot is an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"tvq"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

type config struct {
	queries    []string
	window     int
	duration   int
	method     string
	methodSet  bool
	prune      bool
	format     string
	quiet      bool
	workers    int
	workersSet bool
	checkpoint string
	every      string
	resume     string
	path       string
}

func main() {
	var (
		queries    queryFlags
		window     = flag.Int("w", 300, "window size in frames")
		duration   = flag.Int("d", 240, "duration threshold in frames")
		method     = flag.String("method", "ssg", "state maintenance: naive, mfs or ssg")
		prune      = flag.Bool("prune", false, "enable result-driven pruning (>=-only query sets)")
		format     = flag.String("format", "", "trace format: csv or jsonl (default: from extension)")
		quiet      = flag.Bool("quiet", false, "print only the match count")
		workers    = flag.Int("workers", 1, "engine shards; above 1 runs a parallel pool over the window groups")
		checkpoint = flag.String("checkpoint", "", "snapshot engine state to this path periodically (see -every)")
		every      = flag.String("every", "1000", "checkpoint cadence: a frame count (\"500\") or a wall-clock duration (\"30s\")")
		resume     = flag.String("resume", "", "restore engine state from this snapshot and continue the trace")
	)
	flag.Var(&queries, "q", "query text (repeatable), e.g. \"car >= 1 AND person >= 2\"; append \"@ w:d\" for a per-query window")
	flag.Parse()

	cfg := config{
		queries:    queries,
		window:     *window,
		duration:   *duration,
		method:     *method,
		prune:      *prune,
		format:     *format,
		quiet:      *quiet,
		workers:    *workers,
		checkpoint: *checkpoint,
		every:      *every,
		resume:     *resume,
		path:       flag.Arg(0),
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "method":
			cfg.methodSet = true
		case "workers":
			cfg.workersSet = true
		}
	})

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tvq:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if len(cfg.queries) == 0 && cfg.resume == "" {
		return fmt.Errorf("no queries; pass at least one -q (or -resume a snapshot)")
	}
	if cfg.path == "" {
		return fmt.Errorf("no trace path; pass a file or - for stdin")
	}

	trace, err := readTrace(cfg)
	if err != nil {
		return err
	}

	ck, err := newCheckpointer(cfg.checkpoint, cfg.every)
	if err != nil {
		return err
	}

	total := 0
	report := func(fid int64, ms []tvq.Match) {
		for _, m := range ms {
			total++
			if !cfg.quiet {
				fmt.Printf("frame %d: %s\n", fid, tvq.FormatMatch(m))
			}
		}
	}

	// A snapshot knows whether it holds an engine or a pool; route on
	// that, not on -workers, so the plain "tvq -resume file trace"
	// recipe works for both kinds of run.
	usePool := cfg.workers > 1
	if cfg.resume != "" {
		kind, err := snapshotKind(cfg.resume)
		if err != nil {
			return err
		}
		usePool = kind == "pool"
	}

	var nqueries int
	var start int64
	var method tvq.Method
	if usePool {
		nqueries, start, method, err = runPool(cfg, trace, report, ck)
	} else {
		nqueries, start, method, err = runEngine(cfg, trace, report, ck)
	}
	if err != nil {
		return err
	}
	if start > 0 {
		fmt.Fprintf(os.Stderr, "tvq: resumed at frame %d (%d frames already processed)\n", start, start)
	}

	fmt.Printf("%d matches over %d frames (%d queries, method=%s)\n",
		total, trace.Len()-int(start), nqueries, method)
	return nil
}

// snapshotKind sniffs whether path holds an engine or a pool snapshot.
func snapshotKind(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return tvq.SnapshotKind(f)
}

// runEngine drives a single engine, either fresh or restored.
func runEngine(cfg config, trace *tvq.Trace, report func(int64, []tvq.Match), ck *checkpointer) (nqueries int, start int64, method tvq.Method, err error) {
	var eng *tvq.Engine
	if cfg.resume != "" {
		eng, err = restoreEngine(cfg)
	} else {
		var qs []tvq.Query
		qs, err = parseQueries(cfg)
		if err != nil {
			return 0, 0, "", err
		}
		eng, err = tvq.NewEngine(qs, engineOptions(cfg))
	}
	if err != nil {
		return 0, 0, "", err
	}
	start = eng.NextFID()
	if start > int64(trace.Len()) {
		return 0, 0, "", fmt.Errorf("snapshot has processed %d frames but the trace has only %d", start, trace.Len())
	}
	for _, f := range trace.Frames()[start:] {
		report(f.FID, eng.ProcessFrame(f))
		if ck.due(1) {
			if err := ck.write(eng.Snapshot); err != nil {
				return 0, 0, "", err
			}
		}
	}
	return len(eng.Queries()), start, eng.Method(), nil
}

// runPool drives a window-group-sharded pool, either fresh or restored.
func runPool(cfg config, trace *tvq.Trace, report func(int64, []tvq.Match), ck *checkpointer) (nqueries int, start int64, method tvq.Method, err error) {
	var pool *tvq.Pool
	if cfg.resume != "" {
		pool, err = restorePool(cfg)
		if err != nil {
			return 0, 0, "", err
		}
	} else {
		qs, err := parseQueries(cfg)
		if err != nil {
			return 0, 0, "", err
		}
		pool, err = tvq.NewPool(qs, tvq.PoolOptions{
			Workers: cfg.workers,
			Mode:    tvq.ShardByGroup,
			Engine:  engineOptions(cfg),
		})
		if err != nil {
			return 0, 0, "", err
		}
		if pool.Workers() < cfg.workers {
			fmt.Fprintf(os.Stderr,
				"tvq: note: %d workers requested but only %d usable; parallelism is bounded by distinct window sizes — give queries different \"@ w:d\" windows to shard wider\n",
				cfg.workers, pool.Workers())
		}
	}
	defer pool.Close()

	start = pool.NextFID(0)
	if start > int64(trace.Len()) {
		return 0, 0, "", fmt.Errorf("snapshot has processed %d frames but the trace has only %d", start, trace.Len())
	}
	frames := trace.Frames()[start:]
	const batchSize = 64
	for i := 0; i < len(frames); i += batchSize {
		end := min(i+batchSize, len(frames))
		batch := make([]tvq.FeedFrame, 0, end-i)
		for _, f := range frames[i:end] {
			batch = append(batch, tvq.FeedFrame{Frame: f})
		}
		for _, r := range pool.ProcessBatch(batch) {
			report(r.FID, r.Matches)
		}
		if ck.due(end - i) {
			if err := ck.write(pool.Snapshot); err != nil {
				return 0, 0, "", err
			}
		}
	}
	return len(pool.Queries()), start, pool.Method(), nil
}

func restoreEngine(cfg config) (*tvq.Engine, error) {
	f, err := os.Open(cfg.resume)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opts := tvq.Options{Registry: tvq.StandardRegistry()}
	if cfg.methodSet {
		opts.Method = tvq.Method(cfg.method)
	}
	return tvq.RestoreEngine(f, opts)
}

func restorePool(cfg config) (*tvq.Pool, error) {
	f, err := os.Open(cfg.resume)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opts := tvq.PoolOptions{Engine: tvq.Options{Registry: tvq.StandardRegistry()}}
	if cfg.methodSet {
		opts.Engine.Method = tvq.Method(cfg.method)
	}
	if cfg.workersSet {
		// Cross-check only: the recorded worker count shaped the sharding,
		// so an explicit disagreeing -workers is an error, not a resize.
		opts.Workers = cfg.workers
	}
	return tvq.RestorePool(f, opts)
}

func engineOptions(cfg config) tvq.Options {
	return tvq.Options{
		Method:   tvq.Method(cfg.method),
		Prune:    cfg.prune,
		Registry: tvq.StandardRegistry(),
	}
}

func parseQueries(cfg config) ([]tvq.Query, error) {
	var qs []tvq.Query
	for i, text := range cfg.queries {
		text, w, d, err := splitWindowSuffix(text, cfg.window, cfg.duration)
		if err != nil {
			return nil, err
		}
		q, err := tvq.ParseQuery(i+1, text, w, d)
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
	}
	return qs, nil
}

func readTrace(cfg config) (*tvq.Trace, error) {
	var in io.Reader
	format := cfg.format
	if cfg.path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(cfg.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
		if format == "" {
			if strings.HasSuffix(cfg.path, ".jsonl") {
				format = "jsonl"
			} else {
				format = "csv"
			}
		}
	}
	if format == "" {
		format = "csv"
	}
	reg := tvq.StandardRegistry()
	switch format {
	case "csv":
		return tvq.ReadTraceCSV(in, reg)
	case "jsonl":
		return tvq.ReadTraceJSONL(in, reg)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// checkpointer writes snapshots to a path on a frame-count or
// wall-clock cadence, atomically (temp file + rename) so a crash during
// a write never clobbers the previous good checkpoint.
type checkpointer struct {
	path        string
	everyFrames int
	everyDur    time.Duration
	frames      int
	last        time.Time
}

// newCheckpointer parses the -every value: a bare integer is a frame
// count, anything else must parse as a time.Duration.
func newCheckpointer(path, every string) (*checkpointer, error) {
	if path == "" {
		return &checkpointer{}, nil
	}
	ck := &checkpointer{path: path, last: time.Now()}
	if n, err := strconv.Atoi(every); err == nil {
		if n <= 0 {
			return nil, fmt.Errorf("-every frame count must be positive, got %d", n)
		}
		ck.everyFrames = n
		return ck, nil
	}
	d, err := time.ParseDuration(every)
	if err != nil {
		return nil, fmt.Errorf("-every %q is neither a frame count nor a duration (try \"500\" or \"30s\")", every)
	}
	if d <= 0 {
		return nil, fmt.Errorf("-every duration must be positive, got %v", d)
	}
	ck.everyDur = d
	return ck, nil
}

// due reports whether a checkpoint should be written after n more
// processed frames.
func (c *checkpointer) due(n int) bool {
	if c.path == "" {
		return false
	}
	c.frames += n
	if c.everyFrames > 0 && c.frames >= c.everyFrames {
		return true
	}
	if c.everyDur > 0 && time.Since(c.last) >= c.everyDur {
		return true
	}
	return false
}

// write snapshots via snap into path atomically and resets the cadence.
func (c *checkpointer) write(snap func(io.Writer) error) error {
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := snap(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Flush to stable storage before the rename becomes visible: without
	// this a power loss can persist the rename but not the data, leaving
	// a truncated file where the previous good checkpoint was.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	c.frames = 0
	c.last = time.Now()
	return nil
}

// splitWindowSuffix strips an optional "@ w:d" suffix from a -q
// argument, returning the bare query text and its effective window and
// duration (the shared defaults when no suffix is present).
func splitWindowSuffix(text string, defWindow, defDuration int) (string, int, int, error) {
	at := strings.LastIndex(text, "@")
	if at < 0 {
		return text, defWindow, defDuration, nil
	}
	suffix := strings.TrimSpace(text[at+1:])
	ws, ds, ok := strings.Cut(suffix, ":")
	var w, d int
	var werr, derr error
	if ok {
		w, werr = strconv.Atoi(strings.TrimSpace(ws))
		d, derr = strconv.Atoi(strings.TrimSpace(ds))
	}
	if !ok || werr != nil || derr != nil {
		return "", 0, 0, fmt.Errorf("bad window suffix %q (want \"@ window:duration\", e.g. \"@ 600:450\")", suffix)
	}
	return strings.TrimSpace(text[:at]), w, d, nil
}
