// Command tvqlint is the project's invariant multichecker: it runs the
// internal/analysis suite — retainset, noalloc, sinkcontract, wraperr,
// lockorder — over the given packages and reports violations of the
// engine's ownership, lifetime and hot-path contracts as compile-time
// diagnostics.
//
// Usage:
//
//	go run ./cmd/tvqlint ./...
//	go run ./cmd/tvqlint -json ./internal/core ./internal/engine
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// usage or load error. Diagnostics are suppressed by
// //lint:ignore <analyzer> <reason> (same or next line) and
// //lint:file-ignore <analyzer> <reason> (whole file); see
// internal/analysis and the DESIGN.md "Static invariants" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tvq/internal/analysis"
	"tvq/internal/analysis/lockorder"
	"tvq/internal/analysis/noalloc"
	"tvq/internal/analysis/retainset"
	"tvq/internal/analysis/sinkcontract"
	"tvq/internal/analysis/wraperr"
)

// Suite is the gating analyzer set, in diagnostic-priority order.
var suite = []*analysis.Analyzer{
	retainset.Analyzer,
	noalloc.Analyzer,
	sinkcontract.Analyzer,
	wraperr.Analyzer,
	lockorder.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it lints the packages named by args
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tvqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("analyzers", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tvqlint [-json] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
