// Command tvqlint is the project's invariant multichecker: it runs the
// internal/analysis suite — retainset, resultlife, snapshotdrift,
// noalloc, sinkcontract, wraperr, lockorder — over the given packages
// and reports violations of the engine's ownership, lifetime, snapshot
// and hot-path contracts as compile-time diagnostics.
//
// Usage:
//
//	go run ./cmd/tvqlint ./...
//	go run ./cmd/tvqlint -json ./internal/core ./internal/engine
//	go run ./cmd/tvqlint -only retainset,resultlife ./...
//	go run ./cmd/tvqlint -skip noalloc -github ./...
//
// Analyzer selection: -only runs exactly the named analyzers, -skip
// drops the named ones from the suite; both take comma-separated
// analyzer names (see -analyzers for the list) and naming an unknown
// analyzer is a usage error. Output: the default is one line per
// finding, -json a JSON array, -github GitHub Actions workflow
// commands (::error file=...) so findings surface as inline PR
// annotations.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// usage or load error (including an analyzer that failed to run).
// Diagnostics are suppressed by
// //lint:ignore <analyzer> <reason> (same or next line) and
// //lint:file-ignore <analyzer> <reason> (whole file); see
// internal/analysis and the DESIGN.md "Static invariants" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tvq/internal/analysis"
	"tvq/internal/analysis/lockorder"
	"tvq/internal/analysis/noalloc"
	"tvq/internal/analysis/resultlife"
	"tvq/internal/analysis/retainset"
	"tvq/internal/analysis/sinkcontract"
	"tvq/internal/analysis/snapshotdrift"
	"tvq/internal/analysis/wraperr"
)

// Suite is the gating analyzer set, in diagnostic-priority order: the
// dataflow analyzers (ownership, result lifetime, snapshot symmetry)
// first, then the syntactic contract checks.
var suite = []*analysis.Analyzer{
	retainset.Analyzer,
	resultlife.Analyzer,
	snapshotdrift.Analyzer,
	noalloc.Analyzer,
	sinkcontract.Analyzer,
	wraperr.Analyzer,
	lockorder.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// selectAnalyzers applies -only/-skip to the suite. Unknown names are
// usage errors: a typo in a CI invocation must fail loudly, not
// silently lint nothing.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	if only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-only: unknown analyzer %q (see -analyzers)", name)
			}
			want[name] = true
		}
		if len(want) == 0 {
			return nil, fmt.Errorf("-only: no analyzers named")
		}
		// Keep suite order rather than flag order so diagnostics sort
		// the same way no matter how the flag was spelled.
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		return sel, nil
	}
	if skip != "" {
		drop := make(map[string]bool)
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-skip: unknown analyzer %q (see -analyzers)", name)
			}
			drop[name] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if !drop[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			return nil, fmt.Errorf("-skip: all analyzers skipped")
		}
		return sel, nil
	}
	return suite, nil
}

// githubLine renders a finding as a GitHub Actions workflow command so
// the Actions runner turns it into an inline annotation on the PR diff.
// The message data (after ::) must have % newline-escaped per the
// workflow-command spec; file paths and messages here never contain
// newlines.
func githubLine(f analysis.Finding) string {
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(f.Message)
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s (%s)", f.File, f.Line, f.Column, msg, f.Analyzer)
}

// run is the testable entry point: it lints the packages named by args
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tvqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	githubOut := fs.Bool("github", false, "emit diagnostics as GitHub Actions ::error annotations")
	list := fs.Bool("analyzers", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to leave out")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tvqlint [-json|-github] [-only names | -skip names] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *githubOut {
		fmt.Fprintln(stderr, "tvqlint: -json and -github are mutually exclusive")
		return 2
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "tvqlint: %v\n", err)
		return 2
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *githubOut:
		for _, f := range findings {
			fmt.Fprintln(stdout, githubLine(f))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
