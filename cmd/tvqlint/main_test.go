package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The fixture packages under internal/analysis are real Go packages in
// this module, so the multichecker can be smoke-tested end to end
// against known-red and known-clean inputs without inventing a second
// fixture tree.
const (
	redFixture   = "tvq/internal/analysis/noalloc/testdata/src/a"
	cleanPackage = "tvq/internal/analysis"
)

func TestRunRedFixtureExitsOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{redFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "noalloc") {
		t.Errorf("diagnostics do not name the analyzer:\n%s", stdout.String())
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{cleanPackage}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

// TestRunJSONSchema pins the -json output contract: a JSON array of
// objects with analyzer/file/line/column/message, parseable by CI
// tooling, and an exit code independent of the output format.
func TestRunJSONSchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", redFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json reported no findings on a red fixture")
	}
	for i, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line <= 0 || f.Column <= 0 || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
	}
}

// TestRunJSONCleanEmitsEmptyArray: a clean -json run must still print
// valid JSON ([]), not nothing, so pipelines can always parse stdout.
func TestRunJSONCleanEmitsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", cleanPackage}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	var findings []json.RawMessage
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("clean -json output is not valid JSON: %v\n%q", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean run reported findings: %s", stdout.String())
	}
}

func TestRunAnalyzersListsSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"retainset", "resultlife", "snapshotdrift", "noalloc", "sinkcontract", "wraperr", "lockorder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRunOnlySelectsAnalyzer: -only with an analyzer that has no
// findings on the red fixture must exit 0, while -only with the one
// that does must still exit 1 — selection actually narrows the suite.
func TestRunOnlySelectsAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "wraperr", redFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-only wraperr on the noalloc fixture: exit = %d, want 0; stdout: %s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-only", "noalloc", redFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("-only noalloc on the noalloc fixture: exit = %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "retainset") {
		t.Errorf("-only noalloc still ran retainset:\n%s", stdout.String())
	}
}

// TestRunSkipDropsAnalyzer: skipping the only analyzer that fires on
// the red fixture must turn the run clean.
func TestRunSkipDropsAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-skip", "noalloc", redFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-skip noalloc: exit = %d, want 0; stdout: %s", code, stdout.String())
	}
}

func TestRunUnknownAnalyzerExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-only", "nosuchanalyzer", redFixture},
		{"-skip", "nosuchanalyzer", redFixture},
		{"-only", "noalloc", "-skip", "wraperr", redFixture},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
}

// TestRunGitHubAnnotations pins the -github output contract: one
// ::error workflow command per finding with file/line/col properties,
// so the Actions runner renders findings as inline PR annotations.
func TestRunGitHubAnnotations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-github", redFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("-github reported no findings on a red fixture")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("line is not a workflow command: %q", line)
			continue
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, ",col=") || !strings.Contains(line, "::") {
			t.Errorf("annotation missing properties: %q", line)
		}
		if !strings.Contains(line, "(noalloc)") {
			t.Errorf("annotation does not name the analyzer: %q", line)
		}
	}
	// Clean run: no output at all, exit 0.
	stdout.Reset()
	if code := run([]string{"-github", cleanPackage}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -github run: exit = %d, want 0", code)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean -github run produced output: %s", stdout.String())
	}
}

func TestRunBadPackageExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"tvq/does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
